/**
 * @file
 * A Point is one fully-specified simulation: workload + complete
 * SimConfig + measurement window. Every point carries its *entire*
 * configuration, and its identity is a SHA-256 digest over the
 * complete serialized SimConfig plus the workload parameters and
 * window (pointKey/pointDigest), so no knob can be silently dropped
 * from a result-store key — the defect that forced the old bench
 * harness to bypass caching for whole ablations.
 */

#ifndef ACP_EXP_POINT_HH
#define ACP_EXP_POINT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/config.hh"
#include "workloads/workloads.hh"

namespace acp::sim
{
class System;
}

namespace acp::exp
{

/** In-place config edit applied to a request's base configuration. */
using ConfigMutator = std::function<void(sim::SimConfig &)>;

/** One fully-keyed experiment: a (workload, config, window) triple. */
struct Point
{
    std::string workload;
    /** Display label for progress/tables (not part of the key). */
    std::string label;
    workloads::WorkloadParams params;
    sim::SimConfig cfg;
    /** Functional fast-forward before the timed window. */
    std::uint64_t warmupInsts = 30000;
    /** Timed measurement window. */
    std::uint64_t measureInsts = 60000;
    /** Cycle cap = measureInsts * cyclesPerInst (deadlock guard). */
    std::uint64_t cyclesPerInst = 400;
    /**
     * Optional hook run after fastForward and before the timed
     * window (tracing, co-simulation). A point with a hook is not
     * cacheable: the hook's effect is invisible to the key.
     */
    std::function<void(sim::System &)> prepare;
    /**
     * Optional hook run after the timed window, while the System is
     * still alive (e.g. write the structured trace to a file). Like
     * prepare, it makes the point uncacheable.
     */
    std::function<void(sim::System &)> finish;

    std::uint64_t maxCycles() const { return measureInsts * cyclesPerInst; }

    /**
     * Cacheable points must be fully described by their digest. Hooks
     * are invisible to the key, and the observability knobs are
     * deliberately excluded from it (they never change results), so a
     * run that wants a trace or interval series must actually run.
     * Only cacheable points may execute remotely (acpsimd serves
     * every result through its content-addressed store).
     */
    bool
    cacheable() const
    {
        return !prepare && !finish && cfg.traceMask == 0 &&
               cfg.statsInterval == 0 && !cfg.profileEnabled &&
               !cfg.hostStats;
    }
};

/**
 * Canonical text key of a point: a version line, the workload
 * identity and window, then the complete serialized SimConfig.
 */
std::string pointKey(const Point &point);

/** Lower-case hex SHA-256 of pointKey() — the store key. */
std::string pointDigest(const Point &point);

} // namespace acp::exp

#endif // ACP_EXP_POINT_HH
