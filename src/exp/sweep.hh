/**
 * @file
 * Experiment description: a Point is one fully-specified simulation
 * (workload + complete SimConfig + measurement window); a Sweep is a
 * builder for the cross product workloads × config variants that
 * every paper figure/table is made of.
 *
 * Each point carries its *entire* configuration, and its cache key is
 * a SHA-256 digest over the complete serialized SimConfig plus the
 * workload parameters and window (see pointKey/pointDigest), so no
 * knob can be silently dropped from the key — the defect that forced
 * the old bench harness to bypass caching for whole ablations.
 */

#ifndef ACP_EXP_SWEEP_HH
#define ACP_EXP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.hh"
#include "workloads/workloads.hh"

namespace acp::sim
{
class System;
}

namespace acp::exp
{

/** One fully-keyed experiment: a (workload, config, window) triple. */
struct Point
{
    std::string workload;
    /** Display label for progress/tables (not part of the key). */
    std::string label;
    workloads::WorkloadParams params;
    sim::SimConfig cfg;
    /** Functional fast-forward before the timed window. */
    std::uint64_t warmupInsts = 30000;
    /** Timed measurement window. */
    std::uint64_t measureInsts = 60000;
    /** Cycle cap = measureInsts * cyclesPerInst (deadlock guard). */
    std::uint64_t cyclesPerInst = 400;
    /**
     * Optional hook run after fastForward and before the timed
     * window (tracing, co-simulation). A point with a hook is not
     * cacheable: the hook's effect is invisible to the key.
     */
    std::function<void(sim::System &)> prepare;
    /**
     * Optional hook run after the timed window, while the System is
     * still alive (e.g. write the structured trace to a file). Like
     * prepare, it makes the point uncacheable.
     */
    std::function<void(sim::System &)> finish;

    std::uint64_t maxCycles() const { return measureInsts * cyclesPerInst; }

    /**
     * Cacheable points must be fully described by their digest. Hooks
     * are invisible to the key, and the observability knobs are
     * deliberately excluded from it (they never change results), so a
     * run that wants a trace or interval series must actually run.
     */
    bool
    cacheable() const
    {
        return !prepare && !finish && cfg.traceMask == 0 &&
               cfg.statsInterval == 0 && !cfg.profileEnabled &&
               !cfg.hostStats;
    }
};

/**
 * Canonical text key of a point: a version line, the workload
 * identity and window, then the complete serialized SimConfig.
 */
std::string pointKey(const Point &point);

/** Lower-case hex SHA-256 of pointKey() — the cache key. */
std::string pointDigest(const Point &point);

/** In-place config edit applied to the sweep's base configuration. */
using ConfigMutator = std::function<void(sim::SimConfig &)>;

/**
 * Builder for a cross product of workloads × labelled config
 * variants. Example (the shape of Fig. 7):
 *
 *   exp::Sweep sweep;
 *   sweep.base(cfg).params(params).window(30000, 60000)
 *        .workloads(workloads::intNames())
 *        .variant("base", [](auto &c) { c.policy = kBaseline; })
 *        .variant("commit", [](auto &c) { c.policy = kAuthThenCommit; });
 *   auto results = runner.run(sweep.build());
 *
 * build() orders points workload-major: the point for (workload w,
 * variant v) lands at index w * variantCount() + v.
 */
class Sweep
{
  public:
    Sweep &
    base(const sim::SimConfig &cfg)
    {
        base_ = cfg;
        return *this;
    }

    Sweep &
    params(const workloads::WorkloadParams &p)
    {
        params_ = p;
        return *this;
    }

    Sweep &
    window(std::uint64_t warmup, std::uint64_t measure,
           std::uint64_t cycles_per_inst = 400)
    {
        warmup_ = warmup;
        measure_ = measure;
        cyclesPerInst_ = cycles_per_inst;
        return *this;
    }

    Sweep &
    workload(std::string name)
    {
        workloads_.push_back(std::move(name));
        return *this;
    }

    Sweep &
    workloads(const std::vector<std::string> &names)
    {
        workloads_.insert(workloads_.end(), names.begin(), names.end());
        return *this;
    }

    Sweep &
    variant(std::string label, ConfigMutator mutate)
    {
        variants_.emplace_back(std::move(label), std::move(mutate));
        return *this;
    }

    /**
     * Sweep axis over core counts: the cross product gains a third,
     * innermost dimension and each point's label a "@Nc" suffix
     * (points land at ((w * variantCount()) + v) * coreCount() + c).
     * Empty (the default) leaves the base numCores and the labels
     * untouched — existing two-axis sweeps build bit-identically.
     */
    Sweep &
    cores(const std::vector<unsigned> &counts)
    {
        coresAxis_ = counts;
        return *this;
    }

    /**
     * Per-core workload mix applied to every built point
     * (cfg.coreWorkloads, serialized into the digest). Cores beyond
     * the mix — or with an empty entry — run the point's own
     * workload (Runner's fallback rule).
     */
    Sweep &
    mix(const std::vector<std::string> &names)
    {
        mix_ = names;
        return *this;
    }

    /** Append a fully custom point after the cross product. */
    Sweep &
    point(Point p)
    {
        extra_.push_back(std::move(p));
        return *this;
    }

    /** Variants per workload (1 when none was declared). */
    std::size_t
    variantCount() const
    {
        return variants_.empty() ? 1 : variants_.size();
    }

    /** Core counts per variant (1 when no cores axis was declared). */
    std::size_t
    coreCount() const
    {
        return coresAxis_.empty() ? 1 : coresAxis_.size();
    }

    /** Materialize the cross product (workload-major) + extra points. */
    std::vector<Point>
    build() const
    {
        std::vector<Point> points;
        points.reserve(workloads_.size() * variantCount() * coreCount() +
                       extra_.size());
        for (const std::string &name : workloads_) {
            if (variants_.empty()) {
                appendCorePoints(points, name, name, nullptr);
                continue;
            }
            for (const auto &[label, mutate] : variants_)
                appendCorePoints(points, name, label, mutate);
        }
        points.insert(points.end(), extra_.begin(), extra_.end());
        return points;
    }

  private:
    Point
    makePoint(const std::string &name, const std::string &label,
              const ConfigMutator &mutate) const
    {
        Point p;
        p.workload = name;
        p.label = label;
        p.params = params_;
        p.cfg = base_;
        if (!mix_.empty())
            p.cfg.coreWorkloads = mix_;
        p.warmupInsts = warmup_;
        p.measureInsts = measure_;
        p.cyclesPerInst = cyclesPerInst_;
        if (mutate)
            mutate(p.cfg);
        return p;
    }

    /** One point per cores-axis entry (or just one without the axis). */
    void
    appendCorePoints(std::vector<Point> &points, const std::string &name,
                     const std::string &label,
                     const ConfigMutator &mutate) const
    {
        if (coresAxis_.empty()) {
            points.push_back(makePoint(name, label, mutate));
            return;
        }
        for (unsigned n : coresAxis_) {
            Point p = makePoint(name, label, mutate);
            p.cfg.numCores = n;
            p.label += "@" + std::to_string(n) + "c";
            points.push_back(std::move(p));
        }
    }

    sim::SimConfig base_;
    workloads::WorkloadParams params_;
    std::uint64_t warmup_ = 30000;
    std::uint64_t measure_ = 60000;
    std::uint64_t cyclesPerInst_ = 400;
    std::vector<std::string> workloads_;
    std::vector<std::pair<std::string, ConfigMutator>> variants_;
    std::vector<unsigned> coresAxis_;
    std::vector<std::string> mix_;
    std::vector<Point> extra_;
};

} // namespace acp::exp

#endif // ACP_EXP_SWEEP_HH
