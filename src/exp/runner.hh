/**
 * @file
 * Parallel experiment runner: executes the Points of a Sweep on a
 * std::thread pool (one independent, deterministic sim::System per
 * point), reports progress to stderr, and persists results in a
 * versioned ResultCache keyed on the full-config digest.
 *
 * Job count resolution: explicit RunnerOptions::jobs, else the
 * ACP_JOBS environment variable, else std::thread::hardware_concurrency.
 * Because every System is self-contained (per-instance xoshiro RNG,
 * no global mutable state), a jobs=N run is bit-identical to jobs=1.
 *
 *   exp::Runner runner;                       // cache + ACP_JOBS
 *   auto results = runner.run(sweep.build()); // parallel, cached
 *   exp::Runner::writeJson("out.json", points, results);
 */

#ifndef ACP_EXP_RUNNER_HH
#define ACP_EXP_RUNNER_HH

#include <atomic>
#include <cstdio>
#include <mutex>
#include <memory>
#include <string>
#include <vector>

#include "exp/result_cache.hh"
#include "exp/sweep.hh"

namespace acp::exp
{

/** Runner policy knobs. */
struct RunnerOptions
{
    /** Worker threads; 0 = ACP_JOBS env, else hardware concurrency. */
    unsigned jobs = 0;
    /** Persistent cache path; empty disables caching entirely. */
    std::string cacheFile = "acp_bench_cache.txt";
    /** Per-point progress lines on stderr. */
    bool progress = true;
    /**
     * Statistic names to capture from the run (e.g. "l2.misses",
     * "auth.verify_latency"). The filter applies to every kind —
     * counters, averages and distributions alike. Empty = capture
     * everything.
     */
    std::vector<std::string> counters;
    /** Also keep the full dumpStats() text in Result::statsText. */
    bool captureStatsText = false;
};

/** The runner. One instance may execute many sweeps. */
class Runner
{
  public:
    explicit Runner(RunnerOptions opts = {});
    ~Runner();

    /** Resolved worker-thread count. */
    unsigned jobs() const { return jobs_; }

    /** ACP_JOBS env or hardware concurrency (never 0). */
    static unsigned defaultJobs();

    /** Run one point (cache-aware). */
    Result run(const Point &point);

    /** Run all points in parallel; results align with @p points. */
    std::vector<Result> run(const std::vector<Point> &points);

    /** Convenience: build and run a sweep. */
    std::vector<Result> run(const Sweep &sweep) { return run(sweep.build()); }

    /** Points actually simulated (cache misses) since construction. */
    std::uint64_t simulatedCount() const { return simulated_.load(); }

    /** The underlying cache (null when caching is disabled). */
    const ResultCache *cache() const { return cache_.get(); }

    /**
     * Emit points+results as a JSON document (machine consumption):
     * one record per point with identity, digest, the full config,
     * and the result including captured counters, averages,
     * distributions and — when statsInterval was set — the interval
     * time series.
     */
    static void writeJson(std::FILE *out, const std::vector<Point> &points,
                          const std::vector<Result> &results);

    /** writeJson to @p path; returns false if the file can't be opened. */
    static bool writeJson(const std::string &path,
                          const std::vector<Point> &points,
                          const std::vector<Result> &results);

  private:
    Result simulate(const Point &point) const;
    void reportProgress(std::size_t done, std::size_t total,
                        const Point &point, const Result &result);

    RunnerOptions opts_;
    unsigned jobs_;
    std::unique_ptr<ResultCache> cache_;
    std::atomic<std::uint64_t> simulated_{0};
    std::mutex progressMutex_;
};

} // namespace acp::exp

#endif // ACP_EXP_RUNNER_HH
