/**
 * @file
 * Parallel experiment runner: executes the Points of a Sweep on a
 * std::thread pool (one independent, deterministic sim::System per
 * point), reports progress to stderr, and persists results in a
 * versioned ResultCache keyed on the full-config digest.
 *
 * Job count resolution: explicit RunnerOptions::jobs, else the
 * ACP_JOBS environment variable, else std::thread::hardware_concurrency.
 * Because every System is self-contained (per-instance xoshiro RNG,
 * no global mutable state), a jobs=N run is bit-identical to jobs=1.
 *
 *   exp::Runner runner;                       // cache + ACP_JOBS
 *   auto results = runner.run(sweep.build()); // parallel, cached
 *   exp::Runner::writeJson("out.json", points, results);
 */

#ifndef ACP_EXP_RUNNER_HH
#define ACP_EXP_RUNNER_HH

#include <atomic>
#include <cstdio>
#include <mutex>
#include <memory>
#include <string>
#include <vector>

#include "exp/result_cache.hh"
#include "exp/sweep.hh"
#include "obs/heartbeat.hh"

namespace acp::exp
{

/** Runner policy knobs. */
struct RunnerOptions
{
    /** Worker threads; 0 = ACP_JOBS env, else hardware concurrency. */
    unsigned jobs = 0;
    /** Persistent cache path; empty disables caching entirely. */
    std::string cacheFile = "acp_bench_cache.txt";
    /** Per-point progress lines on stderr. */
    bool progress = true;
    /**
     * Statistic names to capture from the run (e.g. "l2.misses",
     * "auth.verify_latency"). The filter applies to every kind —
     * counters, averages and distributions alike. Empty = capture
     * everything.
     */
    std::vector<std::string> counters;
    /** Also keep the full dumpStats() text in Result::statsText. */
    bool captureStatsText = false;
    /**
     * Live heartbeat sink (JSONL; see obs/heartbeat.hh). When set,
     * the Runner emits sweep_start/point/sweep_end records and each
     * simulated point streams run_start/tick/run_end from the core.
     * Strictly passive: a heartbeat run is bit-identical to a silent
     * one, and heartbeat never affects digests or cacheability.
     * Not owned; must outlive the Runner's run() calls.
     */
    obs::Heartbeat *heartbeat = nullptr;
    /** Simulated cycles between heartbeat tick records. */
    std::uint64_t heartbeatPeriod = 50000;
};

/**
 * Host-side telemetry of one run(points) sweep: cache split, whole-
 * sweep wall time and per-simulated-point wall-time percentiles.
 * Reported in the sweep JSON "telemetry" block; never cached and
 * never part of any digest.
 */
struct SweepTelemetry
{
    std::size_t total = 0;
    std::size_t cached = 0;
    std::size_t simulated = 0;
    /** Whole-sweep wall time (includes cache lookups + threading). */
    double wallSeconds = 0.0;
    /** Percentiles over the simulated points' wallSeconds. */
    double wallP50 = 0.0;
    double wallP90 = 0.0;
    double wallMax = 0.0;
    /** Result-cache counters (valid when hasCacheStats). */
    bool hasCacheStats = false;
    ResultCache::Stats cacheStats;
};

/** The runner. One instance may execute many sweeps. */
class Runner
{
  public:
    explicit Runner(RunnerOptions opts = {});
    ~Runner();

    /** Resolved worker-thread count. */
    unsigned jobs() const { return jobs_; }

    /** ACP_JOBS env or hardware concurrency (never 0). */
    static unsigned defaultJobs();

    /** Run one point (cache-aware). */
    Result run(const Point &point);

    /** Run all points in parallel; results align with @p points. */
    std::vector<Result> run(const std::vector<Point> &points);

    /** Convenience: build and run a sweep. */
    std::vector<Result> run(const Sweep &sweep) { return run(sweep.build()); }

    /** Points actually simulated (cache misses) since construction. */
    std::uint64_t simulatedCount() const { return simulated_.load(); }

    /** The underlying cache (null when caching is disabled). */
    const ResultCache *cache() const { return cache_.get(); }

    /** Telemetry of the most recent run(points) sweep. */
    const SweepTelemetry &lastTelemetry() const { return telemetry_; }

    /**
     * Emit points+results as a JSON document (machine consumption):
     * a provenance manifest, an optional sweep "telemetry" block, then
     * one record per point with identity, digest, the full config,
     * and the result including captured counters, averages,
     * distributions and — when statsInterval was set — the interval
     * time series.
     */
    static void writeJson(std::FILE *out, const std::vector<Point> &points,
                          const std::vector<Result> &results,
                          const SweepTelemetry *telemetry = nullptr);

    /** writeJson to @p path; returns false if the file can't be opened. */
    static bool writeJson(const std::string &path,
                          const std::vector<Point> &points,
                          const std::vector<Result> &results,
                          const SweepTelemetry *telemetry = nullptr);

  private:
    Result simulate(const Point &point) const;
    void reportProgress(std::size_t done, std::size_t total,
                        std::size_t cached, double eta_seconds,
                        const Point &point, const Result &result);

    RunnerOptions opts_;
    unsigned jobs_;
    std::unique_ptr<ResultCache> cache_;
    std::atomic<std::uint64_t> simulated_{0};
    std::mutex progressMutex_;
    SweepTelemetry telemetry_;
};

} // namespace acp::exp

#endif // ACP_EXP_RUNNER_HH
