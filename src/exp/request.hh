/**
 * @file
 * The one experiment entry point: a Request fully describes a sweep —
 * the cross product workloads × config variants (× core counts) that
 * every paper figure/table is made of — *and* how to execute it
 * (jobs, result store, progress, captured statistics, heartbeat).
 *
 * A Request replaces the three entry surfaces the harness used to
 * have (the Sweep builder, RunnerOptions, and acpsim's private flag
 * plumbing). The same Request runs identically through the in-process
 * engine, the acpsim CLI, and — serialized as acp-request-v1 JSON —
 * the acpsimd daemon: digests, results and point JSON are
 * bit-identical across all of them.
 *
 *   exp::Request req;
 *   req.base(cfg).params(params).window(30000, 60000)
 *      .workloads(workloads::intNames())
 *      .variant("base", [](auto &c) { c.policy = kBaseline; })
 *      .variant("commit", [](auto &c) { c.policy = kAuthThenCommit; });
 *   exp::Submission sub = exp::submit(req);
 *
 * points() orders the cross product workload-major: the point for
 * (workload w, variant v, core count c) lands at index
 * ((w * variantCount()) + v) * coreCount() + c.
 *
 * Variants snapshot the base configuration when declared, so set
 * base() (and mix()) before the first variant().
 */

#ifndef ACP_EXP_REQUEST_HH
#define ACP_EXP_REQUEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "exp/point.hh"

namespace acp::obs
{
class Heartbeat;
}

namespace acp::exp
{

/** One labelled configuration of the sweep's variant axis. */
struct RequestVariant
{
    std::string label;
    sim::SimConfig cfg;
};

struct Request
{
    static constexpr const char *kSchema = "acp-request-v1";

    // ----- sweep axes (serialized; all participate in digests) ------

    /** Base configuration snapshot taken by each variant(). */
    sim::SimConfig baseCfg;
    workloads::WorkloadParams workloadParams;
    std::uint64_t warmupInsts = 30000;
    std::uint64_t measureInsts = 60000;
    std::uint64_t cyclesPerInst = 400;
    /** Workload names; a '+'-joined name ("mcf+sha") is a per-core
     *  mix — points() widens numCores and fills coreWorkloads. */
    std::vector<std::string> workloadNames;
    /** Labelled config variants (1 implicit base variant if empty). */
    std::vector<RequestVariant> variants;
    /** Optional innermost sweep axis over core counts ("@Nc" labels). */
    std::vector<unsigned> coresAxis;
    /** Per-core workload mix applied to every point (coreWorkloads). */
    std::vector<std::string> mixWorkloads;

    // ----- execution policy (serialized) ----------------------------

    /** Worker threads; 0 = ACP_JOBS env, else hardware concurrency. */
    unsigned jobs = 0;
    /** Result-store directory; empty disables the store entirely. */
    std::string store = "acp_store";
    /** Per-point progress lines on stderr. */
    bool progress = true;
    /**
     * Statistic names to capture from each run (e.g. "l2.misses").
     * The filter applies to counters, averages and distributions
     * alike. Empty = capture everything.
     */
    std::vector<std::string> counters;
    /** Also keep the full dumpStats() text in Result::statsText
     *  (local execution only — never travels over the wire). */
    bool captureStatsText = false;
    /** Simulated cycles between heartbeat tick records. */
    std::uint64_t heartbeatPeriod = 50000;

    // ----- local-only (never serialized) ----------------------------

    /**
     * Live heartbeat sink (JSONL; see obs/heartbeat.hh). Strictly
     * passive: a heartbeat run is bit-identical to a silent one, and
     * heartbeat never affects digests or cacheability. Not owned;
     * must outlive submit(). With daemon execution the server's
     * stream is relayed into this sink line-for-line.
     */
    obs::Heartbeat *heartbeat = nullptr;
    /** acpsimd socket path; non-empty routes submit() to the daemon. */
    std::string connect;
    /**
     * Last-chance point decoration (trace/cosim hooks, ad-hoc config
     * edits). Runs at the end of points(). A request with a decorator
     * cannot execute remotely.
     */
    std::function<void(std::vector<Point> &)> decorate;
    /**
     * Distributed trace id for daemon execution: sent alongside the
     * submit frame (never inside the acp-request-v1 payload, so it
     * cannot perturb digests) and echoed by the daemon in accepted
     * frames, per-point fabric blocks, its structured log and the
     * fleet Chrome trace. Empty = the daemon mints one.
     */
    std::string traceId;

    // ----- fluent builder (mirrors the old Sweep surface) -----------

    Request &
    base(const sim::SimConfig &cfg)
    {
        baseCfg = cfg;
        return *this;
    }

    Request &
    params(const workloads::WorkloadParams &p)
    {
        workloadParams = p;
        return *this;
    }

    Request &
    window(std::uint64_t warmup, std::uint64_t measure,
           std::uint64_t cycles_per_inst = 400)
    {
        warmupInsts = warmup;
        measureInsts = measure;
        cyclesPerInst = cycles_per_inst;
        return *this;
    }

    Request &
    workload(std::string name)
    {
        workloadNames.push_back(std::move(name));
        return *this;
    }

    Request &
    workloads(const std::vector<std::string> &names)
    {
        workloadNames.insert(workloadNames.end(), names.begin(),
                             names.end());
        return *this;
    }

    /** Snapshot base + apply @p mutate; set base() first. */
    Request &
    variant(std::string label, const ConfigMutator &mutate)
    {
        RequestVariant v;
        v.label = std::move(label);
        v.cfg = baseCfg;
        if (mutate)
            mutate(v.cfg);
        variants.push_back(std::move(v));
        return *this;
    }

    /** Append an explicit, fully-built variant configuration. */
    Request &
    variantConfig(std::string label, const sim::SimConfig &cfg)
    {
        variants.push_back({std::move(label), cfg});
        return *this;
    }

    Request &
    cores(const std::vector<unsigned> &counts)
    {
        coresAxis = counts;
        return *this;
    }

    Request &
    mix(const std::vector<std::string> &names)
    {
        mixWorkloads = names;
        return *this;
    }

    /** Name the distributed trace for daemon execution (local-only). */
    Request &
    trace(std::string id)
    {
        traceId = std::move(id);
        return *this;
    }

    /** Variants per workload (1 when none was declared). */
    std::size_t
    variantCount() const
    {
        return variants.empty() ? 1 : variants.size();
    }

    /** Core counts per variant (1 when no cores axis was declared). */
    std::size_t
    coreCount() const
    {
        return coresAxis.empty() ? 1 : coresAxis.size();
    }

    /**
     * Materialize the cross product (workload-major), expand
     * '+'-joined per-core workload mixes, then run the decorator.
     */
    std::vector<Point> points() const;

    /**
     * Serialize as one acp-request-v1 JSON line (local-only fields —
     * heartbeat, connect, decorate — excluded). Variant configs
     * travel as canonical acp-config-v2 text, so a daemon-side
     * parseConfig() reproduces client-side digests bit-exactly.
     */
    std::string toJson() const;

    /** Parse an acp-request-v1 object; false + @p err on mismatch. */
    static bool fromJson(const json::Value &value, Request &out,
                         std::string *err = nullptr);

    /** fromJson over raw text (one parse + schema check). */
    static bool fromJsonText(const std::string &text, Request &out,
                             std::string *err = nullptr);
};

/**
 * True when the request may execute on a daemon: every point is
 * cacheable (the daemon serves results through its content-addressed
 * store), no stats-text capture, no decorator. @p why names the
 * first blocker when given.
 */
bool remoteEligible(const Request &req, std::string *why = nullptr);

} // namespace acp::exp

#endif // ACP_EXP_REQUEST_HH
