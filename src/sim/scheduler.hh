/**
 * @file
 * Event-driven simulation loop: a min-heap wake queue over the
 * component registry.
 *
 * Components attach once (attachment order is both the stat-dump order
 * and the deterministic tie-break for same-cycle wakes) and then drive
 * themselves: Component::wakeAt(cycle) enqueues a wake, run() pops
 * wakes in (cycle, attachment order) order and calls onWake(), and a
 * component that returns a next-wake cycle is re-queued. The loop ends
 * when the queue drains — i.e. when every component has gone
 * quiescent (returned kCycleNever).
 *
 * Idle cycles are never visited: between wakes, simulated time simply
 * jumps. Components that skip cycles are responsible for keeping their
 * own accounting bit-identical to a per-cycle walk (see
 * OooCore::accountIdleCycles), which is what lets the event-driven
 * loop produce the same results a per-cycle polled loop would at a
 * fraction of the wall-clock.
 */

#ifndef ACP_SIM_SCHEDULER_HH
#define ACP_SIM_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/component.hh"

namespace acp::sim
{

/** The wake scheduler + component registry. */
class Scheduler
{
  public:
    Scheduler() = default;

    /**
     * Register @p comp. Attachment order defines the stat-dump order
     * and the same-cycle wake order; @p front prepends (the core
     * registers in front of the memory side, matching the legacy
     * dump order).
     */
    void attach(Component &comp, bool front = false);

    /** Registered components, in dump order. */
    const std::vector<Component *> &components() const
    {
        return components_;
    }

    /** Drain the wake queue: run until every component is quiescent. */
    void run();

    /** Wakes currently queued (stale entries excluded). */
    std::size_t pendingWakes() const;

    /**
     * Enable sim.host.* self-metrics: per-component wake counts and a
     * jump-length histogram (simulated cycles between consecutive
     * wakes), maintained in Component::hostWakes()/hostJumpHist().
     * Host-side observability only — measures the simulator, never the
     * simulated machine — and fully off the hot path when disabled.
     */
    void enableHostStats(bool on) { hostStats_ = on; }
    bool hostStatsEnabled() const { return hostStats_; }

  private:
    friend class Component;

    struct WakeEntry
    {
        Cycle cycle;
        std::int64_t order;
        Component *comp;
    };

    /** Min-heap ordering: earliest cycle first, then attachment order. */
    static bool
    later(const WakeEntry &a, const WakeEntry &b)
    {
        if (a.cycle != b.cycle)
            return a.cycle > b.cycle;
        return a.order > b.order;
    }

    void enqueue(Component &comp, Cycle cycle);

    std::vector<Component *> components_; // dump order
    std::vector<WakeEntry> heap_;         // std::push_heap/pop_heap
    std::int64_t nextBackOrder_ = 0;
    std::int64_t nextFrontOrder_ = -1;
    bool hostStats_ = false;
};

} // namespace acp::sim

#endif // ACP_SIM_SCHEDULER_HH
