#include "sim/system.hh"

#include "common/logging.hh"
#include "isa/opcodes.hh"

namespace acp::sim
{

System::System(const SimConfig &cfg, isa::Program prog)
    : cfg_(cfg), prog_(std::move(prog)), hier_(cfg_),
      refMem_(cfg_.memoryBytes)
{
    hier_.loadProgram(prog_);
    refMem_.loadProgram(prog_);

    cpu::MemPort port;
    cpu::FlatMem *mem = &refMem_;
    port.read = [mem](Addr a, unsigned b) { return mem->read(a, b); };
    port.write = [mem](Addr a, unsigned b, std::uint64_t v) {
        mem->write(a, b, v);
    };
    port.fetch = [mem](Addr a) { return mem->fetch(a); };
    refExec_ = std::make_unique<cpu::FuncExecutor>(port, prog_.entry);

    if (cfg_.traceMask != 0) {
        trace_ = std::make_unique<obs::TraceBuffer>(cfg_.traceMask);
        hier_.setTrace(trace_.get());
    }
    if (cfg_.statsInterval != 0)
        recorder_ = std::make_unique<obs::IntervalRecorder>(
            cfg_.statsInterval);
}

std::uint64_t
System::fastForward(std::uint64_t insts)
{
    if (core_)
        acp_fatal("fastForward must precede timed execution");

    std::uint64_t done = 0;
    while (done < insts && !refExec_->halted()) {
        cpu::StepInfo info = refExec_->step();
        ++done;
        // Mirror the access stream into the hierarchy to warm caches
        // and keep the on-chip plaintext state consistent.
        hier_.funcFetch(info.pc, /*warm_tags=*/true);
        if (info.inst.isLoad())
            hier_.funcRead(info.memAddr, info.memBytes, true);
        else if (info.isStore)
            hier_.funcWrite(info.memAddr, info.memBytes, info.storeValue,
                            true);
    }
    return done;
}

cpu::OooCore &
System::core()
{
    if (!core_) {
        core_ = std::make_unique<cpu::OooCore>(cfg_, hier_,
                                               refExec_->pc());
        for (unsigned r = 0; r < 32; ++r)
            core_->setReg(r, refExec_->reg(r));
        if (cosim_)
            core_->setCosimShadow(refExec_.get());
        core_->setTrace(trace_.get());
        core_->setIntervalRecorder(recorder_.get());
    }
    return *core_;
}

void
System::enableCosim()
{
    cosim_ = true;
    if (core_)
        core_->setCosimShadow(refExec_.get());
}

RunResult
System::measureTimed(std::uint64_t max_insts, std::uint64_t max_cycles)
{
    cpu::OooCore &timed_core = core();
    std::uint64_t insts0 = timed_core.instsCommitted();
    Cycle cycles0 = timed_core.cycles();

    RunResult res;
    res.reason = timed_core.run(max_insts, max_cycles);
    res.insts = timed_core.instsCommitted() - insts0;
    res.cycles = timed_core.cycles() - cycles0;
    res.ipc = res.cycles ? double(res.insts) / double(res.cycles) : 0.0;
    // The window is over: emit the partial tail interval so interval
    // cycle counts sum to the window length.
    timed_core.flushIntervals();
    return res;
}

std::string
System::dumpStats()
{
    std::string out;
    if (core_) {
        core_->stats().dump(out);
    }
    hier_.stats().dump(out);
    hier_.l1i().stats().dump(out);
    hier_.l1d().stats().dump(out);
    hier_.l2().stats().dump(out);
    hier_.itlb().stats().dump(out);
    hier_.dtlb().stats().dump(out);
    hier_.ctrl().stats().dump(out);
    hier_.ctrl().authEngine().stats().dump(out);
    hier_.ctrl().dram().stats().dump(out);
    hier_.ctrl().counterCache().stats().dump(out);
    hier_.ctrl().externalMemory().stats().dump(out);
    if (hier_.ctrl().hashTree())
        hier_.ctrl().hashTree()->stats().dump(out);
    if (hier_.ctrl().remapLayer())
        hier_.ctrl().remapLayer()->stats().dump(out);
    if (hier_.ctrl().counterPredictor())
        hier_.ctrl().counterPredictor()->stats().dump(out);
    return out;
}

void
System::visitStats(StatVisitor &visitor)
{
    // Same component order as dumpStats().
    if (core_)
        core_->stats().visit(visitor);
    hier_.stats().visit(visitor);
    hier_.l1i().stats().visit(visitor);
    hier_.l1d().stats().visit(visitor);
    hier_.l2().stats().visit(visitor);
    hier_.itlb().stats().visit(visitor);
    hier_.dtlb().stats().visit(visitor);
    hier_.ctrl().stats().visit(visitor);
    hier_.ctrl().authEngine().stats().visit(visitor);
    hier_.ctrl().dram().stats().visit(visitor);
    hier_.ctrl().counterCache().stats().visit(visitor);
    hier_.ctrl().externalMemory().stats().visit(visitor);
    if (hier_.ctrl().hashTree())
        hier_.ctrl().hashTree()->stats().visit(visitor);
    if (hier_.ctrl().remapLayer())
        hier_.ctrl().remapLayer()->stats().visit(visitor);
    if (hier_.ctrl().counterPredictor())
        hier_.ctrl().counterPredictor()->stats().visit(visitor);
}

} // namespace acp::sim
