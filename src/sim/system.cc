#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/auth_policy.hh"
#include "isa/opcodes.hh"
#include "mem/txn.hh"

namespace acp::sim
{

namespace
{

std::vector<isa::Program>
replicate(const isa::Program &prog, unsigned n)
{
    std::vector<isa::Program> progs;
    progs.reserve(n ? n : 1);
    for (unsigned i = 0; i < (n ? n : 1); ++i)
        progs.push_back(prog);
    return progs;
}

} // namespace

System::System(const SimConfig &cfg, isa::Program prog)
    : System(cfg, replicate(prog, cfg.numCores))
{
}

System::System(const SimConfig &cfg, std::vector<isa::Program> progs)
    : cfg_(cfg), progs_(std::move(progs)), hier_(cfg_)
{
    if (progs_.empty() || progs_.size() != std::max(1u, cfg_.numCores))
        acp_fatal("System needs one program per core (%u cores, %zu "
                  "programs)",
                  cfg_.numCores, progs_.size());

    sched_.enableHostStats(cfg_.hostStats);
    sched_.attach(hier_);

    slots_.resize(progs_.size());
    for (unsigned i = 0; i < slots_.size(); ++i) {
        CoreSlot &slot = slots_[i];
        slot.client = hier_.registerClient();
        // Provision the ciphertext image into this client's slice of
        // external memory; the reference machine runs the same image
        // at architectural (un-offset) addresses.
        hier_.loadProgram(progs_[i], hier_.clientBase(slot.client));
        slot.refMem = std::make_unique<cpu::FlatMem>(cfg_.memoryBytes);
        slot.refMem->loadProgram(progs_[i]);
        slot.refExec = std::make_unique<cpu::FuncExecutor>(
            cpu::MemPort(*slot.refMem), progs_[i].entry);
        if (cfg_.statsInterval != 0)
            slot.recorder = std::make_unique<obs::IntervalRecorder>(
                cfg_.statsInterval);
    }

    if (cfg_.traceMask != 0) {
        trace_ = std::make_unique<obs::TraceBuffer>(cfg_.traceMask);
        hier_.setTrace(trace_.get());
    }
    if (cfg_.profileEnabled) {
        profiler_ = std::make_unique<obs::PathProfiler>();
        hier_.setProfiler(profiler_.get());
        // The leak audit reads the adversary-visible address stream.
        hier_.ctrl().busTrace().enable(true);
    }
}

std::uint64_t
System::fastForward(std::uint64_t insts)
{
    if (slots_[0].core)
        acp_fatal("fastForward must precede timed execution");

    std::uint64_t done = 0;
    for (CoreSlot &slot : slots_) {
        std::uint64_t core_done = 0;
        while (core_done < insts && !slot.refExec->halted()) {
            cpu::StepInfo info = slot.refExec->step();
            ++core_done;
            // Mirror the access stream into the shared hierarchy (as
            // this core's client) to warm caches and keep the on-chip
            // plaintext state consistent.
            hier_.funcFetch(info.pc, /*warm_tags=*/true, slot.client);
            if (info.inst.isLoad())
                hier_.funcRead(info.memAddr, info.memBytes, true,
                               slot.client);
            else if (info.isStore)
                hier_.funcWrite(info.memAddr, info.memBytes,
                                info.storeValue, true, slot.client);
        }
        done += core_done;
    }
    return done;
}

void
System::createCores()
{
    // Reverse order with front attach: the scheduler prepends, so the
    // components end up [cpu0, cpu1, ..., hier] — cpu0 both dumps
    // first and wins same-cycle wake ties, and a single-core system
    // keeps the exact legacy order [core, hier].
    for (unsigned r = unsigned(slots_.size()); r-- > 0;) {
        CoreSlot &slot = slots_[r];
        std::string name =
            slots_.size() == 1 ? "core"
                               : "cpu" + std::to_string(r) + ".core";
        slot.core = std::make_unique<cpu::OooCore>(
            cfg_, hier_, slot.refExec->pc(), slot.client, name);
        for (unsigned reg = 0; reg < 32; ++reg)
            slot.core->setReg(reg, slot.refExec->reg(reg));
        if (cosim_)
            slot.core->setCosimShadow(slot.refExec.get());
        slot.core->setTrace(trace_.get());
        slot.core->setIntervalRecorder(slot.recorder.get());
        sched_.attach(*slot.core, /*front=*/true);
    }
}

cpu::OooCore &
System::core(unsigned i)
{
    if (!slots_[0].core)
        createCores();
    return *slots_.at(i).core;
}

void
System::enableCosim()
{
    cosim_ = true;
    for (CoreSlot &slot : slots_)
        if (slot.core)
            slot.core->setCosimShadow(slot.refExec.get());
}

RunResult
System::measureTimed(std::uint64_t max_insts, std::uint64_t max_cycles)
{
    core(0); // create every core

    std::vector<std::uint64_t> insts0(slots_.size());
    std::vector<Cycle> cycles0(slots_.size());
    for (unsigned i = 0; i < slots_.size(); ++i) {
        cpu::OooCore &c = *slots_[i].core;
        insts0[i] = c.instsCommitted();
        cycles0[i] = c.cycles();
        c.beginRun(max_insts, max_cycles);
        c.wakeAt(c.cycles());
    }
    sched_.run();

    RunResult res;
    res.reason = slots_[0].core->runReason();
    for (unsigned i = 0; i < slots_.size(); ++i) {
        cpu::OooCore &c = *slots_[i].core;
        res.insts += c.instsCommitted() - insts0[i];
        std::uint64_t cyc = c.cycles() - cycles0[i];
        if (cyc > res.cycles)
            res.cycles = cyc;
        // The window is over: emit the partial tail interval so
        // interval cycle counts sum to the window length.
        c.flushIntervals();
    }
    res.ipc = res.cycles ? double(res.insts) / double(res.cycles) : 0.0;
    return res;
}

obs::PathProfile
System::pathProfile()
{
    if (!profiler_)
        acp_fatal("pathProfile() requires cfg.profileEnabled");
    obs::StallArray stalls{};
    bool have_stalls = false;
    for (CoreSlot &slot : slots_) {
        if (!slot.core)
            continue;
        have_stalls = true;
        obs::StallArray s = slot.core->stallCycles();
        for (unsigned c = 0; c < obs::kNumStallCauses; ++c)
            stalls[c] += s[c];
    }
    return profiler_->finalize(&hier_.ctrl().busTrace(),
                               have_stalls ? &stalls : nullptr,
                               core::policyName(cfg_.policy));
}

void
System::visitHostStatGroups(StatGroupVisitor &v)
{
    // Groups are rebuilt on every call: component registration can
    // grow between dumps (the timed cores attach lazily) and the
    // arena counters are process-wide snapshots. The temporaries are
    // consumed synchronously by v.group(), so pointer registration
    // into them is safe.
    StatGroup sched_group("sim.host.sched");
    for (Component *comp : sched_.components()) {
        std::string base = comp->componentName();
        sched_group.addCounter(base + ".wakes", &comp->hostWakes());
        sched_group.addDistribution(base + ".jump",
                                    &comp->hostJumpHist());
    }
    v.group(sched_group);

    mem::TxnArenaStats arena = mem::txnArenaStats();
    StatCounter allocs, pool_hits, live, high_water;
    allocs += arena.allocs;
    pool_hits += arena.poolHits;
    live += arena.live;
    high_water += arena.liveHighWater;
    StatGroup arena_group("sim.host.arena");
    arena_group.addCounter("allocs", &allocs);
    arena_group.addCounter("pool_hits", &pool_hits);
    arena_group.addCounter("live", &live);
    arena_group.addCounter("live_high_water", &high_water);
    v.group(arena_group);
}

std::string
System::dumpStats()
{
    struct Dumper final : StatGroupVisitor
    {
        std::string out;
        void group(StatGroup &g) override { g.dump(out); }
    } dumper;
    for (Component *comp : sched_.components())
        comp->visitStats(dumper);
    if (cfg_.hostStats)
        visitHostStatGroups(dumper);
    return std::move(dumper.out);
}

void
System::visitStats(StatVisitor &visitor)
{
    struct Walker final : StatGroupVisitor
    {
        StatVisitor &inner;
        explicit Walker(StatVisitor &v) : inner(v) {}
        void group(StatGroup &g) override { g.visit(inner); }
    } walker(visitor);
    for (Component *comp : sched_.components())
        comp->visitStats(walker);
    if (cfg_.hostStats)
        visitHostStatGroups(walker);
}

} // namespace acp::sim
