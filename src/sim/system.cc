#include "sim/system.hh"

#include "common/logging.hh"
#include "core/auth_policy.hh"
#include "isa/opcodes.hh"
#include "mem/txn.hh"

namespace acp::sim
{

System::System(const SimConfig &cfg, isa::Program prog)
    : cfg_(cfg), prog_(std::move(prog)), hier_(cfg_),
      refMem_(cfg_.memoryBytes)
{
    sched_.enableHostStats(cfg_.hostStats);
    sched_.attach(hier_);
    hier_.loadProgram(prog_);
    refMem_.loadProgram(prog_);

    refExec_ = std::make_unique<cpu::FuncExecutor>(cpu::MemPort(refMem_),
                                                   prog_.entry);

    if (cfg_.traceMask != 0) {
        trace_ = std::make_unique<obs::TraceBuffer>(cfg_.traceMask);
        hier_.setTrace(trace_.get());
    }
    if (cfg_.statsInterval != 0)
        recorder_ = std::make_unique<obs::IntervalRecorder>(
            cfg_.statsInterval);
    if (cfg_.profileEnabled) {
        profiler_ = std::make_unique<obs::PathProfiler>();
        hier_.setProfiler(profiler_.get());
        // The leak audit reads the adversary-visible address stream.
        hier_.ctrl().busTrace().enable(true);
    }
}

std::uint64_t
System::fastForward(std::uint64_t insts)
{
    if (core_)
        acp_fatal("fastForward must precede timed execution");

    std::uint64_t done = 0;
    while (done < insts && !refExec_->halted()) {
        cpu::StepInfo info = refExec_->step();
        ++done;
        // Mirror the access stream into the hierarchy to warm caches
        // and keep the on-chip plaintext state consistent.
        hier_.funcFetch(info.pc, /*warm_tags=*/true);
        if (info.inst.isLoad())
            hier_.funcRead(info.memAddr, info.memBytes, true);
        else if (info.isStore)
            hier_.funcWrite(info.memAddr, info.memBytes, info.storeValue,
                            true);
    }
    return done;
}

cpu::OooCore &
System::core()
{
    if (!core_) {
        core_ = std::make_unique<cpu::OooCore>(cfg_, hier_,
                                               refExec_->pc());
        for (unsigned r = 0; r < 32; ++r)
            core_->setReg(r, refExec_->reg(r));
        if (cosim_)
            core_->setCosimShadow(refExec_.get());
        core_->setTrace(trace_.get());
        core_->setIntervalRecorder(recorder_.get());
        // The core dumps (and, at equal cycles, wakes) ahead of the
        // memory side, matching the legacy enumeration order.
        sched_.attach(*core_, /*front=*/true);
    }
    return *core_;
}

void
System::enableCosim()
{
    cosim_ = true;
    if (core_)
        core_->setCosimShadow(refExec_.get());
}

RunResult
System::measureTimed(std::uint64_t max_insts, std::uint64_t max_cycles)
{
    cpu::OooCore &timed_core = core();
    std::uint64_t insts0 = timed_core.instsCommitted();
    Cycle cycles0 = timed_core.cycles();

    RunResult res;
    timed_core.beginRun(max_insts, max_cycles);
    if (cfg_.legacyTick) {
        res.reason = timed_core.runPolled();
    } else {
        timed_core.wakeAt(timed_core.cycles());
        sched_.run();
        res.reason = timed_core.runReason();
    }
    res.insts = timed_core.instsCommitted() - insts0;
    res.cycles = timed_core.cycles() - cycles0;
    res.ipc = res.cycles ? double(res.insts) / double(res.cycles) : 0.0;
    // The window is over: emit the partial tail interval so interval
    // cycle counts sum to the window length.
    timed_core.flushIntervals();
    return res;
}

obs::PathProfile
System::pathProfile()
{
    if (!profiler_)
        acp_fatal("pathProfile() requires cfg.profileEnabled");
    obs::StallArray stalls{};
    if (core_)
        stalls = core_->stallCycles();
    return profiler_->finalize(&hier_.ctrl().busTrace(),
                               core_ ? &stalls : nullptr,
                               core::policyName(cfg_.policy));
}

void
System::visitHostStatGroups(StatGroupVisitor &v)
{
    // Groups are rebuilt on every call: component registration can
    // grow between dumps (the timed core attaches lazily) and the
    // arena counters are process-wide snapshots. The temporaries are
    // consumed synchronously by v.group(), so pointer registration
    // into them is safe.
    StatGroup sched_group("sim.host.sched");
    for (Component *comp : sched_.components()) {
        std::string base = comp->componentName();
        sched_group.addCounter(base + ".wakes", &comp->hostWakes());
        sched_group.addDistribution(base + ".jump",
                                    &comp->hostJumpHist());
    }
    v.group(sched_group);

    mem::TxnArenaStats arena = mem::txnArenaStats();
    StatCounter allocs, pool_hits, live, high_water;
    allocs += arena.allocs;
    pool_hits += arena.poolHits;
    live += arena.live;
    high_water += arena.liveHighWater;
    StatGroup arena_group("sim.host.arena");
    arena_group.addCounter("allocs", &allocs);
    arena_group.addCounter("pool_hits", &pool_hits);
    arena_group.addCounter("live", &live);
    arena_group.addCounter("live_high_water", &high_water);
    v.group(arena_group);
}

std::string
System::dumpStats()
{
    struct Dumper final : StatGroupVisitor
    {
        std::string out;
        void group(StatGroup &g) override { g.dump(out); }
    } dumper;
    for (Component *comp : sched_.components())
        comp->visitStats(dumper);
    if (cfg_.hostStats)
        visitHostStatGroups(dumper);
    return std::move(dumper.out);
}

void
System::visitStats(StatVisitor &visitor)
{
    struct Walker final : StatGroupVisitor
    {
        StatVisitor &inner;
        explicit Walker(StatVisitor &v) : inner(v) {}
        void group(StatGroup &g) override { g.visit(inner); }
    } walker(visitor);
    for (Component *comp : sched_.components())
        comp->visitStats(walker);
    if (cfg_.hostStats)
        visitHostStatGroups(walker);
}

} // namespace acp::sim
