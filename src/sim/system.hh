/**
 * @file
 * Top-level simulated system: one secure out-of-order core over the
 * secure memory hierarchy, plus a functional *reference machine*
 * (FuncExecutor + FlatMem) used for SimPoint-style fast-forwarding
 * with cache warmup and for commit-time co-simulation.
 *
 * Typical use (mirrors the paper's methodology, Section 5.1):
 *
 *   sim::System system(cfg, workload);
 *   system.fastForward(200'000);          // warm caches functionally
 *   auto res = system.measureTimed(1'000'000, 50'000'000);
 *   printf("IPC %.3f\n", res.ipc);
 */

#ifndef ACP_SIM_SYSTEM_HH
#define ACP_SIM_SYSTEM_HH

#include <memory>
#include <string>

#include "cpu/flat_mem.hh"
#include "cpu/func_executor.hh"
#include "cpu/ooo_core.hh"
#include "isa/program.hh"
#include "obs/interval.hh"
#include "obs/path_profiler.hh"
#include "obs/trace.hh"
#include "secmem/mem_hierarchy.hh"
#include "sim/config.hh"
#include "sim/scheduler.hh"

namespace acp::sim
{

/** Outcome of a timed measurement window. */
struct RunResult
{
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    cpu::StopReason reason = cpu::StopReason::kRunning;
};

/** The system. */
class System
{
  public:
    System(const SimConfig &cfg, isa::Program prog);

    /**
     * Execute @p insts instructions on the reference machine while
     * warming the cache hierarchy (tags + data). Must precede core().
     */
    std::uint64_t fastForward(std::uint64_t insts);

    /** The timed core, created at the current architectural point. */
    cpu::OooCore &core();

    /** Check every committed instruction against the reference. */
    void enableCosim();

    /** Run the timed core for a measurement window. */
    RunResult measureTimed(std::uint64_t max_insts,
                           std::uint64_t max_cycles);

    secmem::MemHierarchy &hier() { return hier_; }
    cpu::FuncExecutor &ref() { return *refExec_; }
    const SimConfig &config() const { return cfg_; }
    const isa::Program &program() const { return prog_; }

    /** Wake scheduler + component registry (dump order = attachment
     *  order; the core attaches in front of the memory side). */
    Scheduler &scheduler() { return sched_; }

    /** Dump all component statistics as text. */
    std::string dumpStats();

    /** Feed every component statistic to @p visitor, typed. */
    void visitStats(StatVisitor &visitor);

    /** Structured trace buffer (nullptr unless cfg.traceMask != 0). */
    obs::TraceBuffer *traceBuffer() { return trace_.get(); }

    /** Interval recorder (nullptr unless cfg.statsInterval != 0). */
    obs::IntervalRecorder *intervalRecorder() { return recorder_.get(); }

    /** Path profiler (nullptr unless cfg.profileEnabled). */
    obs::PathProfiler *pathProfiler() { return profiler_.get(); }

    /** Attach a passive heartbeat feed to the timed core (creates the
     *  core if needed; call after fastForward, nullptr detaches). */
    void setHeartbeat(obs::HeartbeatRun *hb) { core().setHeartbeat(hb); }

    /** Finalized profile snapshot: leak audit over the live bus trace
     *  plus the core's stall counters (if a timed core ran). Call only
     *  when profiling is enabled. */
    obs::PathProfile pathProfile();

  private:
    /** Emit the sim.host.* groups (scheduler wakes/jumps per
     *  component, txn-arena pressure) when cfg.hostStats is set. */
    void visitHostStatGroups(StatGroupVisitor &v);

    SimConfig cfg_;
    isa::Program prog_;
    Scheduler sched_;
    secmem::MemHierarchy hier_;
    cpu::FlatMem refMem_;
    std::unique_ptr<cpu::FuncExecutor> refExec_;
    std::unique_ptr<cpu::OooCore> core_;
    bool cosim_ = false;

    // Observability (passive; all optional)
    std::unique_ptr<obs::TraceBuffer> trace_;
    std::unique_ptr<obs::IntervalRecorder> recorder_;
    std::unique_ptr<obs::PathProfiler> profiler_;
};

} // namespace acp::sim

#endif // ACP_SIM_SYSTEM_HH
