/**
 * @file
 * Top-level simulated system: N secure out-of-order cores (cfg.
 * numCores; 1 is the classic setup) registered as clients of ONE
 * shared secure memory hierarchy — one L2, one secure memory
 * controller, one bus arbiter, one DRAM, one auth engine. Each core
 * has its own functional *reference machine* (FuncExecutor + FlatMem)
 * used for SimPoint-style fast-forwarding with cache warmup and for
 * commit-time co-simulation.
 *
 * Typical use (mirrors the paper's methodology, Section 5.1):
 *
 *   sim::System system(cfg, workload);
 *   system.fastForward(200'000);          // warm caches functionally
 *   auto res = system.measureTimed(1'000'000, 50'000'000);
 *   printf("IPC %.3f\n", res.ipc);
 */

#ifndef ACP_SIM_SYSTEM_HH
#define ACP_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/flat_mem.hh"
#include "cpu/func_executor.hh"
#include "cpu/ooo_core.hh"
#include "isa/program.hh"
#include "obs/interval.hh"
#include "obs/path_profiler.hh"
#include "obs/trace.hh"
#include "secmem/mem_hierarchy.hh"
#include "sim/config.hh"
#include "sim/scheduler.hh"

namespace acp::sim
{

/** Outcome of a timed measurement window. For a multi-core run,
 *  insts is the sum over cores, cycles the maximum over cores, ipc
 *  the aggregate (sum / max), and reason core 0's outcome. */
struct RunResult
{
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;
    cpu::StopReason reason = cpu::StopReason::kRunning;
};

/** The system. */
class System
{
  public:
    /** Single-program convenience: every core runs a copy of @p prog
     *  (each in its own address-space slice). */
    System(const SimConfig &cfg, isa::Program prog);

    /** One program per core; progs.size() must equal cfg.numCores. */
    System(const SimConfig &cfg, std::vector<isa::Program> progs);

    /**
     * Execute @p insts instructions on EACH core's reference machine
     * while warming the shared cache hierarchy (tags + data). Must
     * precede core(). Returns the total instructions fast-forwarded
     * (== the per-core count for a single-core system).
     */
    std::uint64_t fastForward(std::uint64_t insts);

    /** Timed core @p i, created (all together) at the current
     *  architectural point. */
    cpu::OooCore &core(unsigned i);
    /** Core 0 (THE core of a single-core system). */
    cpu::OooCore &core() { return core(0); }

    unsigned numCores() const { return unsigned(slots_.size()); }

    /** Check every committed instruction against its reference. */
    void enableCosim();

    /** Run the timed cores for a measurement window (every core gets
     *  the same per-core limits). */
    RunResult measureTimed(std::uint64_t max_insts,
                           std::uint64_t max_cycles);

    secmem::MemHierarchy &hier() { return hier_; }
    cpu::FuncExecutor &ref(unsigned i = 0) { return *slots_[i].refExec; }
    const SimConfig &config() const { return cfg_; }
    const isa::Program &program() const { return progs_[0]; }

    /** Wake scheduler + component registry (dump order = attachment
     *  order; the core attaches in front of the memory side). */
    Scheduler &scheduler() { return sched_; }

    /** Dump all component statistics as text. */
    std::string dumpStats();

    /** Feed every component statistic to @p visitor, typed. */
    void visitStats(StatVisitor &visitor);

    /** Structured trace buffer (nullptr unless cfg.traceMask != 0). */
    obs::TraceBuffer *traceBuffer() { return trace_.get(); }

    /** Core @p i's interval recorder (nullptr unless
     *  cfg.statsInterval != 0). */
    obs::IntervalRecorder *intervalRecorder(unsigned i = 0)
    {
        return slots_[i].recorder.get();
    }

    /** Path profiler (nullptr unless cfg.profileEnabled). */
    obs::PathProfiler *pathProfiler() { return profiler_.get(); }

    /** Attach a passive heartbeat feed to timed core @p i (creates
     *  the cores if needed; call after fastForward, nullptr
     *  detaches). */
    void setHeartbeat(obs::HeartbeatRun *hb, unsigned i = 0)
    {
        core(i).setHeartbeat(hb);
    }

    /** Finalized profile snapshot: leak audit over the live bus trace
     *  plus the cores' summed stall counters (if timed cores ran).
     *  Call only when profiling is enabled. */
    obs::PathProfile pathProfile();

  private:
    /** One core's private slice of the system: its program copy,
     *  reference machine, hierarchy client id, and (once timed
     *  execution starts) its OooCore + interval recorder. */
    struct CoreSlot
    {
        unsigned client = 0;
        std::unique_ptr<cpu::FlatMem> refMem;
        std::unique_ptr<cpu::FuncExecutor> refExec;
        std::unique_ptr<cpu::OooCore> core;
        std::unique_ptr<obs::IntervalRecorder> recorder;
    };

    /** Create every timed core at once (deterministic attach order:
     *  cpu0 wakes/dumps first, then cpu1, ..., then the hierarchy). */
    void createCores();

    /** Emit the sim.host.* groups (scheduler wakes/jumps per
     *  component, txn-arena pressure) when cfg.hostStats is set. */
    void visitHostStatGroups(StatGroupVisitor &v);

    SimConfig cfg_;
    std::vector<isa::Program> progs_;
    Scheduler sched_;
    secmem::MemHierarchy hier_;
    std::vector<CoreSlot> slots_;
    bool cosim_ = false;

    // Observability (passive; all optional)
    std::unique_ptr<obs::TraceBuffer> trace_;
    std::unique_ptr<obs::PathProfiler> profiler_;
};

} // namespace acp::sim

#endif // ACP_SIM_SYSTEM_HH
