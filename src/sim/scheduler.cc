#include "sim/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acp::sim
{

void
Component::wakeAt(Cycle cycle)
{
    if (!sched_)
        acp_fatal("component '%s' not attached to a scheduler", name_);
    if (cycle >= pendingWake_)
        return; // an earlier wake is already queued; it will re-ask
    pendingWake_ = cycle;
    sched_->enqueue(*this, cycle);
}

void
Scheduler::attach(Component &comp, bool front)
{
    if (comp.sched_)
        acp_fatal("component '%s' attached twice", comp.name_);
    comp.sched_ = this;
    if (front) {
        comp.order_ = nextFrontOrder_--;
        components_.insert(components_.begin(), &comp);
    } else {
        comp.order_ = nextBackOrder_++;
        components_.push_back(&comp);
    }
}

void
Scheduler::enqueue(Component &comp, Cycle cycle)
{
    heap_.push_back(WakeEntry{cycle, comp.order_, &comp});
    std::push_heap(heap_.begin(), heap_.end(), later);
}

std::size_t
Scheduler::pendingWakes() const
{
    std::size_t live = 0;
    for (const WakeEntry &e : heap_)
        if (e.comp->pendingWake_ == e.cycle)
            ++live;
    return live;
}

void
Scheduler::run()
{
    while (!heap_.empty()) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        WakeEntry top = heap_.back();
        heap_.pop_back();
        // A component re-woken earlier leaves its superseded entry in
        // the heap; skip it.
        if (top.comp->pendingWake_ != top.cycle)
            continue;
        top.comp->pendingWake_ = kCycleNever;
        if (hostStats_) {
            ++top.comp->hostWakes_;
            if (top.comp->lastWakeCycle_ != kCycleNever)
                top.comp->hostJumpHist_.sample(top.cycle -
                                               top.comp->lastWakeCycle_);
            top.comp->lastWakeCycle_ = top.cycle;
        }
        Cycle next = top.comp->onWake(top.cycle);
        if (next == kCycleNever)
            continue;
        if (next <= top.cycle)
            acp_fatal("component '%s' asked to wake at %llu from %llu "
                      "(time must advance)",
                      top.comp->name_, (unsigned long long)next,
                      (unsigned long long)top.cycle);
        top.comp->wakeAt(next);
    }
}

} // namespace acp::sim
