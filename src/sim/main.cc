/**
 * @file
 * acpsim — command-line driver for the secure-processor simulator,
 * routed through the acp::exp experiment API so single runs and
 * multi-point sweeps share one execution and output path.
 *
 *   acpsim --list
 *   acpsim mcf --policy commit --insts 200000
 *   acpsim swim --policy issue --l2 1M --tree --stats
 *   acpsim mcf,art,swim --policy baseline,commit,issue --jobs 8 \
 *          --json sweep.json
 *   acpsim mcf,art --policy baseline,commit --connect acpsimd.sock
 *
 * The CLI builds one exp::Request and hands it to exp::submit();
 * with --connect (or ACP_CONNECT) the same request executes on an
 * acpsimd daemon instead of in-process — identical output either way.
 *
 * Prints IPC (one row per point), with --stats the full statistics of
 * every component, and with --json a machine-readable record of every
 * point including its full configuration and digest.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/auth_policy.hh"
#include "cpu/ooo_core.hh"
#include "exp/request.hh"
#include "exp/submit.hh"
#include "obs/heartbeat.hh"
#include "obs/interval.hh"
#include "obs/manifest.hh"
#include "obs/path_report.hh"
#include "obs/trace.hh"
#include "obs/trace_json.hh"
#include "sim/system.hh"
#include "workloads/workloads.hh"

using namespace acp;

namespace
{

void
usage()
{
    std::printf(
        "acpsim — authentication-control-point secure processor "
        "simulator\n\n"
        "usage: acpsim <workload>[,<workload>...] [options]\n"
        "       acpsim --list\n\n"
        "workloads: any catalog name, comma-separated for a sweep, or\n"
        "           the groups 'int', 'fp', 'all'; a '+'-joined mix\n"
        "           (e.g. mcf+sha) runs one workload per core\n\n"
        "run options (simulated machine and measurement window):\n"
        "  --policy P[,P...]  baseline | issue | write | commit | fetch |\n"
        "                commit+fetch | obf        (default: baseline);\n"
        "                a comma-separated list sweeps every policy; a\n"
        "                '+'-joined mix (e.g. commit+baseline) runs one\n"
        "                policy per core — spell commit+fetch 'cf'\n"
        "                inside a mix\n"
        "  --cores N     out-of-order cores sharing one secure memory\n"
        "                controller, bus and auth engine (default: 1);\n"
        "                stats appear per core as cpu0.core.*, ...\n"
        "  --l2 SIZE     L2 size, e.g. 256K or 1M  (default: 256K)\n"
        "  --ruu N       RUU entries               (default: 128)\n"
        "  --tree        enable the CHTree integrity tree\n"
        "  --drain       drain-authen-then-fetch variant\n"
        "  --remap SIZE  re-map cache size         (default: 32K)\n"
        "  --ws SIZE     workload working set      (default: 2M)\n"
        "  --insts N     measured instructions     (default: 100000)\n"
        "  --warmup N    fast-forward instructions (default: 50000)\n"
        "  --auth N      MAC verification latency  (default: 148)\n"
        "  --seed N      workload data seed: array contents/layout\n"
        "                randomization             (default: 42)\n"
        "  --rng-seed N  simulator RNG seed: external-memory and remap\n"
        "                layer randomness; independent of --seed so\n"
        "                data layout and simulator randomness can be\n"
        "                varied separately        (default: 12345)\n\n"
        "sweep options (multi-point execution and output):\n"
        "  --jobs N      worker threads for sweeps (default: ACP_JOBS\n"
        "                env, else all cores)\n"
        "  --json FILE   write every point+result as JSON\n"
        "  --cache       reuse/persist results in the ./acp_store\n"
        "                content-addressed result store (cap with\n"
        "                ACP_CACHE_MAX_ENTRIES)\n"
        "  --connect SOCK  submit the sweep to an acpsimd daemon over\n"
        "                its unix socket instead of running in-process\n"
        "                (also: ACP_CONNECT env); results and JSON are\n"
        "                bit-identical to a local run. Local-only\n"
        "                observability (--stats, --trace*, --cosim,\n"
        "                --profile, --stats-interval, --host-stats) is\n"
        "                rejected\n\n"
        "observability options:\n"
        "  --stats       dump all component statistics\n"
        "  --host-stats  collect sim.host.* simulator self-metrics\n"
        "                (scheduler wakes + jump histogram per\n"
        "                component, txn-arena pressure); shown with\n"
        "                --stats and captured into --json\n"
        "  --heartbeat[=SPEC]  stream live JSONL progress records\n"
        "                (sweep/run/tick); SPEC is a file path, fd:N,\n"
        "                or '-' for stderr  (default: stderr); works\n"
        "                for --connect runs too (daemon stream relay)\n"
        "  --heartbeat-interval N  simulated cycles between tick\n"
        "                records                  (default: 50000)\n"
        "  --stats-interval N  record IPC + stall breakdown every N\n"
        "                cycles; prints a table and lands in --json\n"
        "  --profile[=FILE]  transaction path profiler: per-kind\n"
        "                latency-segment tables, path-shape census,\n"
        "                slowest transactions, stall join and leak\n"
        "                audit; prints a report per point, lands in\n"
        "                --json, and with =FILE also writes a\n"
        "                standalone profile JSON\n"
        "  --trace FILE  write a Chrome trace-event JSON of the timed\n"
        "                window (Perfetto-loadable; single-point only)\n"
        "  --trace-commits N  print a commit trace of the first N\n"
        "                insts (single-point runs only)\n"
        "  --cosim       co-simulate against the functional reference\n"
        "                (single-point runs only)\n\n"
        "  --version     print the build manifest (git SHA, build\n"
        "                type, compiler, sanitizers) and exit\n");
}

std::uint64_t
parseSize(const char *text)
{
    char *end = nullptr;
    double value = std::strtod(text, &end);
    if (end == text)
        acp_fatal("bad size '%s'", text);
    switch (*end) {
      case 'k': case 'K': return std::uint64_t(value * 1024);
      case 'm': case 'M': return std::uint64_t(value * 1024 * 1024);
      case 'g': case 'G': return std::uint64_t(value * 1024 * 1024 * 1024);
      case '\0': return std::uint64_t(value);
      default: acp_fatal("bad size suffix '%s'", end);
    }
}

core::AuthPolicy
parsePolicy(const std::string &name)
{
    if (name == "baseline") return core::AuthPolicy::kBaseline;
    if (name == "issue") return core::AuthPolicy::kAuthThenIssue;
    if (name == "write") return core::AuthPolicy::kAuthThenWrite;
    if (name == "commit") return core::AuthPolicy::kAuthThenCommit;
    if (name == "fetch") return core::AuthPolicy::kAuthThenFetch;
    if (name == "commit+fetch" || name == "cf")
        return core::AuthPolicy::kCommitPlusFetch;
    if (name == "obf" || name == "obfuscation")
        return core::AuthPolicy::kCommitPlusObfuscation;
    acp_fatal("unknown policy '%s'", name.c_str());
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t cut = text.find(sep, pos);
        if (cut == std::string::npos)
            cut = text.size();
        if (cut > pos)
            parts.push_back(text.substr(pos, cut - pos));
        pos = cut + 1;
    }
    return parts;
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    return splitOn(text, ',');
}

/**
 * One policy, or a '+'-joined per-core mix. The literal policy name
 * "commit+fetch" wins over mix splitting (it predates multi-core);
 * inside a mix, spell it with its alias "cf" (e.g. "cf+baseline").
 */
std::vector<core::AuthPolicy>
parsePolicyMix(const std::string &token)
{
    if (token == "commit+fetch" || token.find('+') == std::string::npos)
        return {parsePolicy(token)};
    std::vector<core::AuthPolicy> mix;
    for (const std::string &part : splitOn(token, '+'))
        mix.push_back(parsePolicy(part));
    return mix;
}

std::vector<std::string>
expandWorkloads(const std::string &arg)
{
    std::vector<std::string> names;
    for (const std::string &part : splitCommas(arg)) {
        if (part == "int") {
            for (const std::string &n : workloads::intNames())
                names.push_back(n);
        } else if (part == "fp") {
            for (const std::string &n : workloads::fpNames())
                names.push_back(n);
        } else if (part == "all") {
            for (const std::string &n : workloads::intNames())
                names.push_back(n);
            for (const std::string &n : workloads::fpNames())
                names.push_back(n);
        } else {
            names.push_back(part);
        }
    }
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    if (std::strcmp(argv[1], "--list") == 0) {
        std::printf("%-10s %-4s %s\n", "name", "type", "behaviour class");
        for (const auto &info : workloads::catalog())
            std::printf("%-10s %-4s %s\n", info.name,
                        info.isFp ? "FP" : "INT", info.behaviour);
        return 0;
    }
    if (std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        usage();
        return 0;
    }
    if (std::strcmp(argv[1], "--version") == 0) {
        std::fputs(obs::manifestText(obs::manifest()).c_str(), stdout);
        return 0;
    }

    std::vector<std::string> names = expandWorkloads(argv[1]);
    std::vector<std::string> policy_tokens = {"baseline"};
    sim::SimConfig cfg;
    cfg.memoryBytes = 256ULL << 20;
    cfg.protectedBytes = cfg.memoryBytes;
    workloads::WorkloadParams params;
    std::uint64_t insts = 100000;
    std::uint64_t warmup = 50000;
    unsigned jobs = 0;
    std::string json_file;
    std::string connect_sock;
    bool use_cache = false;
    bool dump_stats = false;
    bool cosim = false;
    std::uint64_t trace_commits = 0;
    std::string trace_file;
    bool profile = false;
    std::string profile_file;
    bool heartbeat = false;
    std::string heartbeat_spec;
    std::uint64_t heartbeat_interval = 50000;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                acp_fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--policy") {
            policy_tokens = splitCommas(next());
            if (policy_tokens.empty())
                acp_fatal("--policy needs at least one policy name");
        } else if (arg == "--cores") {
            cfg.numCores = unsigned(std::strtoul(next(), nullptr, 0));
            if (cfg.numCores == 0)
                acp_fatal("--cores needs at least 1");
        } else if (arg == "--l2") {
            cfg.l2.sizeBytes = parseSize(next());
            cfg.l2.hitLatency = cfg.l2.sizeBytes >= (1 << 20) ? 8 : 4;
        } else if (arg == "--ruu") {
            cfg.ruuSize = unsigned(std::strtoul(next(), nullptr, 0));
            cfg.lsqSize = cfg.ruuSize / 2;
        } else if (arg == "--tree") {
            cfg.hashTreeEnabled = true;
        } else if (arg == "--drain") {
            cfg.fetchGateDrain = true;
        } else if (arg == "--remap") {
            cfg.remapCache.sizeBytes = parseSize(next());
        } else if (arg == "--ws") {
            params.workingSetBytes = parseSize(next());
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--auth") {
            cfg.authLatency = unsigned(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--seed") {
            params.seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--rng-seed") {
            cfg.rngSeed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--jobs") {
            jobs = unsigned(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--cache") {
            use_cache = true;
        } else if (arg == "--connect") {
            connect_sock = next();
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--cosim") {
            cosim = true;
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--trace-commits") {
            trace_commits = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--stats-interval") {
            cfg.statsInterval = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--host-stats") {
            cfg.hostStats = true;
        } else if (arg == "--heartbeat" ||
                   arg.rfind("--heartbeat=", 0) == 0) {
            heartbeat = true;
            if (arg.size() > std::strlen("--heartbeat="))
                heartbeat_spec = arg.substr(std::strlen("--heartbeat="));
        } else if (arg == "--heartbeat-interval") {
            heartbeat_interval = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--profile" ||
                   arg.rfind("--profile=", 0) == 0) {
            profile = true;
            cfg.profileEnabled = true;
            if (arg.size() > std::strlen("--profile="))
                profile_file = arg.substr(std::strlen("--profile="));
        } else {
            usage();
            acp_fatal("unknown option '%s'", arg.c_str());
        }
    }
    if (names.empty())
        acp_fatal("no workloads given");
    if (!connect_sock.empty() &&
        (dump_stats || cosim || trace_commits > 0 || !trace_file.empty() ||
         profile || cfg.statsInterval != 0 || cfg.hostStats))
        acp_fatal("--connect cannot run local-only observability "
                  "(--stats/--trace/--trace-commits/--cosim/--profile/"
                  "--stats-interval/--host-stats)");

    // Build the request: workloads x policies, every knob in the
    // config. '+'-joined workload mixes expand inside points().
    exp::Request req;
    req.base(cfg).params(params).window(warmup, insts, 1000);
    req.workloads(names);
    for (const std::string &token : policy_tokens) {
        std::vector<core::AuthPolicy> mix = parsePolicyMix(token);
        if (mix.size() == 1) {
            core::AuthPolicy policy = mix[0];
            req.variant(core::policyName(policy),
                        [policy](sim::SimConfig &c) { c.policy = policy; });
        } else {
            // Per-core policy mix: cpu0 runs mix[0], cpu1 mix[1], ...
            // (cores beyond the mix fall back to cfg.policy = mix[0]).
            req.variant(token, [mix](sim::SimConfig &c) {
                c.corePolicies = mix;
                c.policy = mix[0];
                if (c.numCores < mix.size())
                    c.numCores = unsigned(mix.size());
            });
        }
    }

    if (trace_commits > 0 || cosim || !trace_file.empty()) {
        // Tracing hooks into the live System between warmup and the
        // timed window; the hooks make the point uncacheable (and the
        // request local-only).
        std::string path = trace_file;
        req.decorate = [trace_commits, cosim,
                        path](std::vector<exp::Point> &points) {
            if (points.size() > 1)
                acp_fatal("--trace/--trace-commits/--cosim need a "
                          "single workload and policy");
            if (trace_commits > 0 || cosim) {
                points[0].prepare = [trace_commits,
                                     cosim](sim::System &system) {
                    if (cosim)
                        system.enableCosim();
                    if (trace_commits > 0)
                        system.core().traceCommits(stdout, trace_commits);
                };
                // enableCosim must be armed before the timed core
                // exists; the prepare hook runs right after
                // fastForward, which is early enough (the core is
                // created by measureTimed/traceCommits).
            }
            if (!path.empty()) {
                // Structured tracing: record everything, write the
                // Chrome trace while the System is still alive.
                points[0].cfg.traceMask = obs::kCatAll;
                points[0].finish = [path](sim::System &system) {
                    if (!obs::writeChromeTrace(*system.traceBuffer(),
                                               path))
                        acp_fatal("cannot write %s", path.c_str());
                    std::fprintf(stderr, "wrote %s\n", path.c_str());
                };
            }
        };
    }

    req.jobs = jobs;
    req.connect = connect_sock;
    if (!use_cache)
        req.store.clear();
    req.captureStatsText = dump_stats;
    std::unique_ptr<obs::Heartbeat> hb_sink;
    if (heartbeat) {
        hb_sink = obs::Heartbeat::open(heartbeat_spec);
        if (!hb_sink)
            acp_fatal("cannot open heartbeat sink '%s'",
                      heartbeat_spec.c_str());
        req.heartbeat = hb_sink.get();
        req.heartbeatPeriod = heartbeat_interval;
    }
    exp::Submission sub = exp::submit(req);
    if (!sub.ok)
        acp_fatal("%s", sub.error.c_str());
    const std::vector<exp::Point> &points = sub.points;
    const std::vector<exp::Result> &results = sub.results;

    if (points.size() == 1) {
        const exp::Result &res = results[0];
        std::printf("workload   %s\n", points[0].workload.c_str());
        std::printf("policy     %s\n", points[0].label.c_str());
        if (points[0].cfg.numCores > 1)
            std::printf("cores      %u\n", points[0].cfg.numCores);
        std::printf("insts      %llu\n",
                    (unsigned long long)res.run.insts);
        std::printf("cycles     %llu\n",
                    (unsigned long long)res.run.cycles);
        std::printf("IPC        %.4f\n", res.run.ipc);
        std::printf("reason     %s\n",
                    cpu::stopReasonName(res.run.reason));
        if (res.intervalPeriod != 0 && !res.intervals.empty()) {
            std::printf("\nintervals (every %llu cycles):\n",
                        (unsigned long long)res.intervalPeriod);
            obs::printIntervalTable(res.intervals, stdout);
        }
        if (dump_stats)
            std::printf("\n%s", res.statsText.c_str());
    } else {
        std::printf("%-10s %-20s %10s %12s %12s %10s\n", "workload",
                    "policy", "IPC", "insts", "cycles", "reason");
        for (std::size_t i = 0; i < points.size(); ++i)
            std::printf("%-10s %-20s %10.4f %12llu %12llu %10s\n",
                        points[i].workload.c_str(),
                        points[i].label.c_str(),
                        results[i].run.ipc,
                        (unsigned long long)results[i].run.insts,
                        (unsigned long long)results[i].run.cycles,
                        cpu::stopReasonName(results[i].run.reason));
        for (std::size_t i = 0; i < points.size(); ++i)
            if (results[i].intervalPeriod != 0 &&
                !results[i].intervals.empty()) {
                std::printf("\n%s / %s intervals (every %llu cycles):\n",
                            points[i].workload.c_str(),
                            points[i].label.c_str(),
                            (unsigned long long)results[i].intervalPeriod);
                obs::printIntervalTable(results[i].intervals, stdout);
            }
        if (dump_stats)
            for (std::size_t i = 0; i < points.size(); ++i)
                std::printf("\n===== %s / %s =====\n%s",
                            points[i].workload.c_str(),
                            points[i].label.c_str(),
                            results[i].statsText.c_str());
    }

    if (profile) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (!results[i].hasProfile)
                continue;
            if (points.size() > 1)
                std::printf("\n===== %s / %s =====\n",
                            points[i].workload.c_str(),
                            points[i].label.c_str());
            else
                std::printf("\n");
            obs::writePathProfileText(stdout, results[i].profile);
        }
        if (!profile_file.empty()) {
            std::FILE *f = std::fopen(profile_file.c_str(), "w");
            if (!f)
                acp_fatal("cannot write %s", profile_file.c_str());
            std::fputs("{\n  \"version\": \"acp-profile-v1\",\n"
                       "  \"points\": [",
                       f);
            bool first = true;
            for (std::size_t i = 0; i < points.size(); ++i) {
                if (!results[i].hasProfile)
                    continue;
                std::fprintf(f,
                             "%s\n    {\n      \"workload\": \"%s\",\n"
                             "      \"policy\": \"%s\",\n"
                             "      \"profile\": ",
                             first ? "" : ",",
                             points[i].workload.c_str(),
                             points[i].label.c_str());
                obs::writePathProfileJson(f, results[i].profile,
                                          "      ");
                std::fputs("\n    }", f);
                first = false;
            }
            std::fputs("\n  ]\n}\n", f);
            std::fclose(f);
            std::fprintf(stderr, "wrote %s\n", profile_file.c_str());
        }
    }

    if (!json_file.empty()) {
        if (!exp::writeJson(json_file, points, results, &sub.telemetry))
            acp_fatal("cannot write %s", json_file.c_str());
        std::fprintf(stderr, "wrote %s\n", json_file.c_str());
    }
    return 0;
}
