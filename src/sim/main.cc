/**
 * @file
 * acpsim — command-line driver for the secure-processor simulator.
 *
 *   acpsim --list
 *   acpsim mcf --policy commit --insts 200000
 *   acpsim swim --policy issue --l2 1M --tree --stats
 *   acpsim twolf --policy obf --remap 128K --ws 8M
 *
 * Prints IPC and (with --stats) the full statistics of every
 * component.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "core/auth_policy.hh"
#include "sim/system.hh"
#include "workloads/workloads.hh"

using namespace acp;

namespace
{

void
usage()
{
    std::printf(
        "acpsim — authentication-control-point secure processor "
        "simulator\n\n"
        "usage: acpsim <workload> [options]\n"
        "       acpsim --list\n\n"
        "options:\n"
        "  --policy P    baseline | issue | write | commit | fetch |\n"
        "                commit+fetch | obf        (default: baseline)\n"
        "  --l2 SIZE     L2 size, e.g. 256K or 1M  (default: 256K)\n"
        "  --ruu N       RUU entries               (default: 128)\n"
        "  --tree        enable the CHTree integrity tree\n"
        "  --drain       drain-authen-then-fetch variant\n"
        "  --remap SIZE  re-map cache size         (default: 32K)\n"
        "  --ws SIZE     workload working set      (default: 2M)\n"
        "  --insts N     measured instructions     (default: 100000)\n"
        "  --warmup N    fast-forward instructions (default: 50000)\n"
        "  --auth N      MAC verification latency  (default: 148)\n"
        "  --seed N      workload data seed        (default: 42)\n"
        "  --stats       dump all component statistics\n"
        "  --trace N     print a commit trace of the first N insts\n"
        "  --cosim       co-simulate against the functional reference\n");
}

std::uint64_t
parseSize(const char *text)
{
    char *end = nullptr;
    double value = std::strtod(text, &end);
    if (end == text)
        acp_fatal("bad size '%s'", text);
    switch (*end) {
      case 'k': case 'K': return std::uint64_t(value * 1024);
      case 'm': case 'M': return std::uint64_t(value * 1024 * 1024);
      case 'g': case 'G': return std::uint64_t(value * 1024 * 1024 * 1024);
      case '\0': return std::uint64_t(value);
      default: acp_fatal("bad size suffix '%s'", end);
    }
}

core::AuthPolicy
parsePolicy(const std::string &name)
{
    if (name == "baseline") return core::AuthPolicy::kBaseline;
    if (name == "issue") return core::AuthPolicy::kAuthThenIssue;
    if (name == "write") return core::AuthPolicy::kAuthThenWrite;
    if (name == "commit") return core::AuthPolicy::kAuthThenCommit;
    if (name == "fetch") return core::AuthPolicy::kAuthThenFetch;
    if (name == "commit+fetch" || name == "cf")
        return core::AuthPolicy::kCommitPlusFetch;
    if (name == "obf" || name == "obfuscation")
        return core::AuthPolicy::kCommitPlusObfuscation;
    acp_fatal("unknown policy '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    if (std::strcmp(argv[1], "--list") == 0) {
        std::printf("%-10s %-4s %s\n", "name", "type", "behaviour class");
        for (const auto &info : workloads::catalog())
            std::printf("%-10s %-4s %s\n", info.name,
                        info.isFp ? "FP" : "INT", info.behaviour);
        return 0;
    }
    if (std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        usage();
        return 0;
    }

    std::string workload = argv[1];
    sim::SimConfig cfg;
    cfg.memoryBytes = 256ULL << 20;
    cfg.protectedBytes = cfg.memoryBytes;
    workloads::WorkloadParams params;
    std::uint64_t insts = 100000;
    std::uint64_t warmup = 50000;
    bool dump_stats = false;
    bool cosim = false;
    bool drain = false;
    std::uint64_t trace = 0;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                acp_fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--policy") {
            cfg.policy = parsePolicy(next());
        } else if (arg == "--l2") {
            cfg.l2.sizeBytes = parseSize(next());
            cfg.l2.hitLatency = cfg.l2.sizeBytes >= (1 << 20) ? 8 : 4;
        } else if (arg == "--ruu") {
            cfg.ruuSize = unsigned(std::strtoul(next(), nullptr, 0));
            cfg.lsqSize = cfg.ruuSize / 2;
        } else if (arg == "--tree") {
            cfg.hashTreeEnabled = true;
        } else if (arg == "--drain") {
            drain = true;
        } else if (arg == "--remap") {
            cfg.remapCache.sizeBytes = parseSize(next());
        } else if (arg == "--ws") {
            params.workingSetBytes = parseSize(next());
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--auth") {
            cfg.authLatency = unsigned(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--seed") {
            params.seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--cosim") {
            cosim = true;
        } else if (arg == "--trace") {
            trace = std::strtoull(next(), nullptr, 0);
        } else {
            usage();
            acp_fatal("unknown option '%s'", arg.c_str());
        }
    }

    sim::System system(cfg, workloads::build(workload, params));
    if (drain)
        system.hier().ctrl().setFetchGateDrain(true);
    if (cosim)
        system.enableCosim();

    std::fprintf(stderr, "fast-forwarding %llu instructions...\n",
                 (unsigned long long)warmup);
    system.fastForward(warmup);
    if (trace > 0)
        system.core().traceCommits(stdout, trace);
    std::fprintf(stderr, "measuring %llu instructions...\n",
                 (unsigned long long)insts);
    sim::RunResult res = system.measureTimed(insts, insts * 1000);

    std::printf("workload   %s\n", workload.c_str());
    std::printf("policy     %s\n", core::policyName(cfg.policy));
    std::printf("insts      %llu\n", (unsigned long long)res.insts);
    std::printf("cycles     %llu\n", (unsigned long long)res.cycles);
    std::printf("IPC        %.4f\n", res.ipc);
    if (dump_stats) {
        std::printf("\n%s", system.dumpStats().c_str());
    }
    return 0;
}
