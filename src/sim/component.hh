/**
 * @file
 * First-class simulation component: the unit the sim::Scheduler wakes
 * and the unit the statistics registry enumerates.
 *
 * The pre-scheduler API polled every model object every cycle
 * (OooCore::tick() in a driver loop) and enumerated statistics through
 * an ad-hoc std::function walk (System::forEachComponent). Both jobs
 * now live here:
 *
 *  - wakeAt(cycle)  — request a wake no later than @p cycle (the
 *    component-facing half of the scheduler contract);
 *  - onWake(now)    — the scheduler-facing half: do this component's
 *    work for cycle @p now and return the next cycle it wants to run,
 *    or kCycleNever to go quiescent;
 *  - visitStats(v)  — enumerate the component's StatGroups (and those
 *    of sub-components it owns) in dump order.
 *
 * Passive latency-oracle components (the memory side of this
 * simulator: MemHierarchy, SecureMemCtrl, BusArbiter, Dram) never ask
 * for wakes — their timing is computed analytically at call time — but
 * they still implement Component so the registry owns stat enumeration
 * and so a future multi-core/queued-memory model can make them active
 * without another API change.
 */

#ifndef ACP_SIM_COMPONENT_HH
#define ACP_SIM_COMPONENT_HH

#include <cstdint>
#include <string>
#include <utility>

#include "common/stats.hh"
#include "common/types.hh"

namespace acp::sim
{

class Scheduler;

/** Typed walk over a component's stat groups (cf. StatVisitor, which
 *  walks the individual statistics inside one group). */
class StatGroupVisitor
{
  public:
    virtual ~StatGroupVisitor() = default;
    virtual void group(StatGroup &g) = 0;
};

/** One schedulable, stat-bearing simulation component. */
class Component
{
  public:
    /** Owned name: multi-core instances are named dynamically
     *  ("cpu0.core", ...), so the string cannot be a borrowed literal. */
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    const char *componentName() const { return name_.c_str(); }

    /**
     * Request a wake no later than @p cycle. Requires attachment to a
     * Scheduler. Earlier requests win; a later request is absorbed by
     * the already-pending earlier wake (onWake re-asks every time).
     */
    void wakeAt(Cycle cycle);

    /**
     * Scheduler callback: run this component's work for cycle @p now.
     * @return the next cycle this component wants to run, or
     *         kCycleNever to go quiescent until woken externally.
     */
    virtual Cycle onWake(Cycle now) = 0;

    /** Enumerate this component's stat groups in dump order. */
    virtual void visitStats(StatGroupVisitor &v) = 0;

    // ----- sim.host.* telemetry (maintained by the Scheduler when
    // host stats are enabled; strictly host-side observability, never
    // part of simulation results) --------------------------------------
    /** Times the scheduler dispatched this component's onWake.
     *  Non-const so System can register it into a sim.host StatGroup. */
    StatCounter &hostWakes() { return hostWakes_; }
    /** Simulated-cycle distance between consecutive wakes (the
     *  event-loop "jump length"; count == wakes - 1). */
    StatDistribution &hostJumpHist() { return hostJumpHist_; }

  private:
    friend class Scheduler;

    std::string name_;
    Scheduler *sched_ = nullptr;
    /** Tie-break for same-cycle wakes: attachment order. */
    std::int64_t order_ = 0;
    /** Earliest queued wake (kCycleNever = none pending). */
    Cycle pendingWake_ = kCycleNever;

    // Host telemetry (see accessors above)
    StatCounter hostWakes_;
    StatDistribution hostJumpHist_;
    Cycle lastWakeCycle_ = kCycleNever;
};

} // namespace acp::sim

#endif // ACP_SIM_COMPONENT_HH
