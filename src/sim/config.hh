/**
 * @file
 * Simulation configuration: the processor-model parameters of the
 * paper's Table 3 plus the secure-memory parameters of Section 5.2.
 * All latencies are in core cycles; the reference core runs at 1 GHz
 * so 1 cycle == 1 ns and the paper's nanosecond figures map directly.
 */

#ifndef ACP_SIM_CONFIG_HH
#define ACP_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/auth_policy.hh"

namespace acp::sim
{

/** Memory encryption timing mode (paper Table 1). */
enum class EncryptionMode
{
    /** Counter mode: pad precomputation overlaps the fetch. */
    kCounterMode,
    /** CBC: serial per-chunk decryption after the data arrives. */
    kCbc,
};

/** Cache geometry for one level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 0;
    unsigned assoc = 1;
    unsigned lineBytes = 64;
    unsigned hitLatency = 1;
};

/** Full system configuration (defaults = paper Table 3, 256KB L2). */
struct SimConfig
{
    // ----- pipeline ---------------------------------------------------
    unsigned fetchWidth = 8;
    unsigned decodeWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    /** Register Update Unit entries (128 default; 64 in Fig. 10/11). */
    unsigned ruuSize = 128;
    /** Load/store queue entries. */
    unsigned lsqSize = 64;
    /** Post-commit store buffer entries (authen-then-write parking). */
    unsigned storeBufferSize = 32;

    // ----- functional units ----------------------------------------------
    unsigned intAluUnits = 8;
    unsigned intMulUnits = 2;
    unsigned memPorts = 4;
    unsigned fpAddUnits = 4;
    unsigned fpMulUnits = 2;

    // ----- branch prediction -------------------------------------------
    unsigned bimodalEntries = 4096;
    unsigned btbEntries = 1024;
    unsigned rasEntries = 16;
    /** Cycles from mispredict detection to fetch restart. */
    unsigned mispredictPenalty = 3;

    // ----- caches -------------------------------------------------------
    CacheConfig l1i{16 * 1024, 1, 32, 1};
    CacheConfig l1d{16 * 1024, 1, 32, 1};
    CacheConfig l2{256 * 1024, 4, 64, 4};

    // ----- TLBs ----------------------------------------------------------
    unsigned tlbEntries = 128;
    unsigned tlbAssoc = 4;
    unsigned pageBytes = 4096;
    unsigned tlbMissPenalty = 30;

    // ----- DRAM / front-side bus -----------------------------------------
    /** Core cycles per memory-bus clock (1 GHz core / 200 MHz bus). */
    unsigned busClockRatio = 5;
    /** Bytes transferred per bus clock. */
    unsigned busWidthBytes = 8;
    /** CAS latency in bus clocks. */
    unsigned casLatency = 20;
    /** Precharge (RP) latency in bus clocks. */
    unsigned prechargeLatency = 7;
    /** RAS-to-CAS (RCD) latency in bus clocks. */
    unsigned rasToCasLatency = 7;
    unsigned dramBanks = 8;
    unsigned dramRowBytes = 4096;
    /** Max outstanding external fetches (MSHR-limited MLP). */
    unsigned maxOutstandingFetches = 16;
    /** Extra bus beats per line fetch to transfer the 64-bit MAC. */
    unsigned macTransferBeats = 1;

    // ----- secure memory --------------------------------------------------
    /** Counter-mode pad generation latency (80 ns 256-bit Rijndael). */
    unsigned decryptLatency = 80;
    /**
     * Line-MAC verification latency once ciphertext and pad are
     * available: two SHA-256 compression passes at 74 ns with
     * precomputed ipad state and truncated output.
     */
    unsigned authLatency = 148;
    /**
     * Engine initiation interval: cycles between accepted requests.
     * The reference engine is pipelined and sized to match memory
     * bandwidth (one 64B line per bus burst = 40 ns), so verification
     * adds latency but never throttles fill bandwidth — consistent
     * with the paper's results where even authen-then-write stays
     * within 2% of baseline. Set equal to authLatency to model a
     * fully serial engine (ablation).
     */
    unsigned authEngineInterval = 40;
    /** Counter cache (sequence-number cache of [19]). */
    CacheConfig counterCache{32 * 1024, 8, 64, 1};
    /** Bytes per per-line counter in external memory. */
    unsigned counterBytes = 8;
    /** Encryption timing mode (Table 1 comparison). */
    EncryptionMode encryptionMode = EncryptionMode::kCounterMode;
    /**
     * Counter prediction + pad precomputation ([19], the paper's
     * reference implementation): on a counter-cache miss, pads for a
     * window of predicted counters are computed in parallel with the
     * data fetch, keeping decryption at MAX(fetch, decrypt) when the
     * prediction hits.
     */
    bool counterPrediction = true;
    std::uint64_t counterPredictRegionBytes = 4096;
    unsigned counterPredictWindow = 4;

    // ----- hash tree (CHTree, Section 5.2.3 / Fig. 12) ---------------------
    bool hashTreeEnabled = false;
    CacheConfig hashTreeCache{8 * 1024, 4, 64, 1};
    /** Per-level hash latency (one SHA-256 pass). */
    unsigned treeHashLatency = 74;
    /** Size of the tree-protected memory region. */
    std::uint64_t protectedBytes = 256ULL * 1024 * 1024;

    // ----- address obfuscation (Section 4.3 / Fig. 9) ----------------------
    /**
     * The paper's 256 KB re-map cache covers ~10% of the remap table
     * for SPEC-sized (100s of MB) footprints; with our laptop-scale
     * working sets the table itself is ~256 KB, so the default cache
     * is scaled to 32 KB to preserve the coverage ratio (Fig. 9
     * sweeps this).
     */
    CacheConfig remapCache{32 * 1024, 4, 64, 1};
    /** Bytes per remap-table entry in external memory. */
    unsigned remapEntryBytes = 4;

    // ----- policy / run control --------------------------------------------
    core::AuthPolicy policy = core::AuthPolicy::kBaseline;
    /**
     * Drain-authen-then-fetch variant (Section 4.2.4 ablation): the
     * bus grant waits for the whole authentication queue instead of
     * the triggering instruction's LastRequest tag. Part of the
     * config so experiment digests capture it.
     */
    bool fetchGateDrain = false;
    std::uint64_t memoryBytes = 256ULL * 1024 * 1024;
    std::uint64_t rngSeed = 12345;

    // ----- multi-core ------------------------------------------------------
    /**
     * Cores registered against the one shared SecureMemCtrl /
     * MemHierarchy / BusArbiter / Dram backend. Each core gets a
     * power-of-two slice of the address space (MemHierarchy::
     * clientStride), its own OooCore pipeline and stall taxonomy, and
     * contends with its neighbours for the bus, the MAC engine and
     * the shared metadata caches. 1 = the classic single-core system.
     */
    unsigned numCores = 1;
    /**
     * Per-core authen-policy overrides, indexed by core id. Empty =
     * every core runs @ref policy (always the case for single-core).
     * Heterogeneous mixes are the point: an authen-then-issue core
     * next to a baseline core shares one verify queue.
     */
    std::vector<core::AuthPolicy> corePolicies;
    /**
     * Per-core workload names, indexed by core id. Empty = every core
     * runs the harness-selected workload. Serialized into the config
     * digest so multi-core points cache correctly.
     */
    std::vector<std::string> coreWorkloads;

    // ----- observability ---------------------------------------------------
    /**
     * Structured-trace category mask (bits of obs::TraceCat; 0 = no
     * tracing). Observability is strictly passive — it never changes
     * simulation results — so these two fields are deliberately NOT
     * part of serializeConfig()/pointDigest(): a traced run shares its
     * digest (and therefore its cached result) with the untraced one.
     */
    std::uint32_t traceMask = 0;
    /** Interval-statistics period in cycles (0 = disabled). */
    std::uint64_t statsInterval = 0;
    /** Transaction path profiler (PathProfiler sink + leak audit);
     *  passive like tracing, so also digest-excluded. */
    bool profileEnabled = false;
    /**
     * Collect sim.host.* self-metrics (scheduler wake counts and
     * jump-length histograms per component, txn-arena high-water
     * marks). These measure the *simulator*, not the simulated
     * machine; passive like tracing, so also digest-excluded and
     * uncacheable at the exp::Point level.
     */
    bool hostStats = false;

    /** Convenience: apply the paper's 1MB L2 configuration. */
    void
    useLargeL2()
    {
        l2.sizeBytes = 1024 * 1024;
        l2.hitLatency = 8;
    }
};

} // namespace acp::sim

#endif // ACP_SIM_CONFIG_HH
