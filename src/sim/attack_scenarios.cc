#include "sim/attack_scenarios.hh"

#include <memory>

#include "common/logging.hh"
#include "core/security_monitor.hh"
#include "sim/system.hh"
#include "workloads/victims.hh"

namespace acp::sim
{

namespace
{

/** Scenario cycle budget (plenty: exploits trigger within ~5k). */
constexpr std::uint64_t kMaxCycles = 100000;

SimConfig
scenarioCfg(core::AuthPolicy policy)
{
    SimConfig cfg;
    cfg.policy = policy;
    cfg.memoryBytes = 64ULL << 20;
    cfg.protectedBytes = cfg.memoryBytes;
    // Every scenario runs with the path profiler attached, so results
    // carry the machine-checked leak audit next to the per-exploit
    // predicate verdict (and the System enables the bus trace).
    cfg.profileEnabled = true;
    return cfg;
}

/** XOR an 8-byte little-endian mask into external ciphertext. */
void
tamper64(System &system, Addr addr, std::uint64_t xor_mask)
{
    std::uint8_t mask[8];
    for (int i = 0; i < 8; ++i)
        mask[i] = std::uint8_t(xor_mask >> (8 * i));
    system.hier().ctrl().externalMemory().tamper(addr, mask, 8);
}

/** Substitute known-plaintext code words with attacker code. */
void
tamperCode(System &system, Addr addr,
           const std::vector<std::uint32_t> &plain,
           const std::vector<std::uint32_t> &replacement)
{
    if (replacement.size() > plain.size())
        acp_fatal("replacement kernel larger than the predictable window");
    for (std::size_t i = 0; i < replacement.size(); ++i) {
        std::uint32_t diff = plain[i] ^ replacement[i];
        std::uint8_t mask[4];
        for (int b = 0; b < 4; ++b)
            mask[b] = std::uint8_t(diff >> (8 * b));
        system.hier().ctrl().externalMemory().tamper(addr + 4 * i, mask, 4);
    }
}

ScenarioResult
finish(System &system, ScenarioResult result,
       const std::function<bool(const mem::BusTxn &)> &leak_pred)
{
    cpu::OooCore &core = system.core();
    result.exceptionRaised = core.securityException();
    result.precise = core.exceptionPrecise();
    result.exceptionCycle = core.exceptionCycle();
    result.taintedCommits = core.taintedCommits();
    result.taintedStoreDrains = core.taintedStoreDrains();
    result.cyclesRun = core.cycles();

    core::SecurityMonitor monitor(system.hier().ctrl().busTrace());
    Cycle horizon = result.exceptionRaised ? result.exceptionCycle
                                           : kCycleNever;
    core::LeakReport report = monitor.scan(leak_pred, horizon);
    result.leaked = report.leaked;
    result.firstLeakCycle = report.firstLeakCycle;
    result.leakCount = report.matchCount;
    result.audit = system.pathProfile().audit;
    return result;
}

ScenarioResult
runPointerConversion(core::AuthPolicy policy, std::uint64_t seed)
{
    workloads::PointerConversionVictim victim =
        workloads::buildPointerConversionVictim(seed);
    System system(scenarioCfg(policy), victim.prog);
    system.hier().ctrl().busTrace().enable(true);

    // Figure 1: convert the encrypted NULL into a pointer at the
    // secret with a single ciphertext XOR (CTR malleability).
    tamper64(system, victim.nullPtrAddr, victim.secretAddr);

    system.measureTimed(~0ULL >> 1, kMaxCycles);

    ScenarioResult result;
    result.policy = policy;
    result.exploit = Exploit::kPointerConversion;
    // The traversal dereferences the secret: its value (+node offset)
    // appears as a fetch address.
    return finish(system, result,
                  core::SecurityMonitor::addressEquals(victim.secretValue +
                                                       8));
}

/** One probe with pivot @p pivot; returns (result, observedGreater). */
std::pair<ScenarioResult, bool>
binarySearchProbe(core::AuthPolicy policy, std::uint64_t secret,
                  std::uint64_t pivot)
{
    workloads::BinarySearchVictim victim =
        workloads::buildBinarySearchVictim(secret);
    System system(scenarioCfg(policy), victim.prog);
    system.hier().ctrl().busTrace().enable(true);

    // Known plaintext 0: XOR with the pivot sets the constant.
    tamper64(system, victim.constAddr, pivot);

    system.measureTimed(~0ULL >> 1, kMaxCycles);

    ScenarioResult result;
    result.policy = policy;
    result.exploit = Exploit::kBinarySearch;

    core::SecurityMonitor monitor(system.hier().ctrl().busTrace());
    Cycle horizon = system.core().securityException()
                        ? system.core().exceptionCycle()
                        : kCycleNever;
    bool saw_greater =
        monitor.scan(core::SecurityMonitor::addressEquals(
                         victim.markerGreater), horizon)
            .leaked;
    bool saw_not_greater =
        monitor.scan(core::SecurityMonitor::addressEquals(
                         victim.markerNotGreater), horizon)
            .leaked;

    // Leak == the adversary can tell which path ran.
    auto either = [&](const mem::BusTxn &txn) {
        return core::SecurityMonitor::addressEquals(
                   victim.markerGreater)(txn) ||
               core::SecurityMonitor::addressEquals(
                   victim.markerNotGreater)(txn);
    };
    result = finish(system, result, either);
    result.leaked = result.leaked && (saw_greater != saw_not_greater);
    return {result, saw_greater && !saw_not_greater};
}

ScenarioResult
runBinarySearch(core::AuthPolicy policy, std::uint64_t seed)
{
    std::uint64_t secret = 0xb000 + (seed & 0xfff);
    return binarySearchProbe(policy, secret, 0x8000).first;
}

ScenarioResult
runDisclosingKernel(core::AuthPolicy policy, std::uint64_t seed,
                    bool io_variant)
{
    workloads::DisclosingKernelVictim victim =
        workloads::buildDisclosingKernelVictim(seed);
    System system(scenarioCfg(policy), victim.prog);
    system.hier().ctrl().busTrace().enable(true);

    // Replace the predictable epilogue with the kernel (two XORs:
    // kernel ^ known plaintext applied to the ciphertext).
    std::vector<std::uint32_t> kernel =
        io_variant ? workloads::ioKernelWords(victim.secretAddr, 7)
                   : workloads::disclosingKernelWords(victim.secretAddr,
                                                      victim.pageBase);
    tamperCode(system, victim.epilogueAddr, victim.epiloguePlain, kernel);

    system.measureTimed(~0ULL >> 1, kMaxCycles);

    ScenarioResult result;
    result.policy = policy;
    result.exploit = io_variant ? Exploit::kIoDisclosure
                                : Exploit::kDisclosingKernel;

    if (io_variant) {
        return finish(system, result,
                      core::SecurityMonitor::ioOutEquals(
                          victim.secretValue));
    }
    Addr expect = victim.pageBase |
                  ((victim.secretValue & 0xff) << 6);
    return finish(system, result,
                  core::SecurityMonitor::addressEquals(expect));
}

} // namespace

const char *
exploitName(Exploit exploit)
{
    switch (exploit) {
      case Exploit::kPointerConversion: return "pointer-conversion";
      case Exploit::kBinarySearch:      return "binary-search";
      case Exploit::kDisclosingKernel:  return "disclosing-kernel";
      case Exploit::kIoDisclosure:      return "io-disclosure";
    }
    return "?";
}

ScenarioResult
runExploit(Exploit exploit, core::AuthPolicy policy, std::uint64_t seed)
{
    switch (exploit) {
      case Exploit::kPointerConversion:
        return runPointerConversion(policy, seed);
      case Exploit::kBinarySearch:
        return runBinarySearch(policy, seed);
      case Exploit::kDisclosingKernel:
        return runDisclosingKernel(policy, seed, false);
      case Exploit::kIoDisclosure:
        return runDisclosingKernel(policy, seed, true);
    }
    acp_panic("bad exploit");
}

BinarySearchRecovery
recoverSecretViaBinarySearch(core::AuthPolicy policy, std::uint64_t secret,
                             unsigned bits)
{
    BinarySearchRecovery recovery;
    recovery.secret = secret;

    std::uint64_t lo = 0;
    std::uint64_t hi = (bits >= 64) ? ~std::uint64_t(0)
                                    : (std::uint64_t(1) << bits) - 1;
    while (lo < hi) {
        std::uint64_t pivot = lo + (hi - lo) / 2;
        auto [result, greater] = binarySearchProbe(policy, secret, pivot);
        ++recovery.trials;
        if (!result.leaked)
            return recovery; // the policy blocked the side channel
        if (greater)
            lo = pivot + 1; // secret > pivot
        else
            hi = pivot;
    }
    recovery.recovered = lo;
    recovery.success = (lo == secret);
    return recovery;
}

} // namespace acp::sim
