/**
 * @file
 * Complete, canonical serialization of SimConfig plus a SHA-256
 * digest over it. The experiment subsystem (acp::exp) keys its result
 * cache on this digest, so *every* field must appear here — a
 * sizeof() tripwire in config_io.cc fires at compile time when a
 * field is added without updating the serializer, closing the "knob
 * silently missing from the cache key" hazard the old bench harness
 * had.
 */

#ifndef ACP_SIM_CONFIG_IO_HH
#define ACP_SIM_CONFIG_IO_HH

#include <string>

#include "sim/config.hh"

namespace acp::sim
{

/** Stable display token for an encryption mode ("counter" / "cbc"). */
const char *encryptionModeName(EncryptionMode mode);

/**
 * Canonical text form of @p cfg: a version line followed by one
 * "key=value" line per field, in declaration order, nested cache
 * geometries flattened as "l2.sizeBytes=..." etc. Enums are rendered
 * as their stable display names so the text survives enum reordering.
 */
std::string serializeConfig(const SimConfig &cfg);

/** Lower-case hex SHA-256 of serializeConfig(cfg). */
std::string configDigest(const SimConfig &cfg);

/**
 * Apply one "key=value" pair to @p cfg — the exact inverse of one
 * serializeConfig() line (numbers in decimal, enums by display name,
 * corePolicies/coreWorkloads as comma-joined lists). Returns false
 * (and fills @p err when given) for unknown keys or unparsable
 * values: a config that arrives over the wire must never silently
 * drop a knob, for the same reason serializeConfig() must never omit
 * one.
 */
bool applyConfigValue(SimConfig &cfg, const std::string &key,
                      const std::string &value,
                      std::string *err = nullptr);

/**
 * Parse a complete serializeConfig() text (version line + key=value
 * lines) into @p cfg, starting from defaults. Round-trip contract:
 * serializeConfig(parseConfig(serializeConfig(c))) ==
 * serializeConfig(c) for every c — asserted in tests, and what makes
 * daemon-side digests bit-identical to client-side ones.
 */
bool parseConfig(const std::string &text, SimConfig &cfg,
                 std::string *err = nullptr);

} // namespace acp::sim

#endif // ACP_SIM_CONFIG_IO_HH
