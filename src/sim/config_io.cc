#include "sim/config_io.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "crypto/sha256.hh"

namespace acp::sim
{

// Tripwire: if this fires you added/removed/resized a SimConfig
// field. Add it to serializeConfig() below (new fields invalidate
// every cached experiment result, which is exactly the point) and
// update the expected size. Exceptions: the observability fields
// (traceMask, statsInterval, profileEnabled, hostStats) are
// deliberately NOT serialized — tracing, interval stats and path
// profiling are strictly passive, so an observed run is bit-identical
// to (and shares its cached result with) the unobserved one. Runs
// with observability enabled are made uncacheable at the exp::Point
// level instead. hostStats is excluded for the same reason as the
// trace fields: sim.host.* self-metrics measure the simulator, never
// the simulated machine.
#if defined(__x86_64__) && defined(__linux__)
static_assert(sizeof(SimConfig) == 432,
              "SimConfig layout changed: update serializeConfig() in "
              "config_io.cc, then the expected size here");
#endif

const char *
encryptionModeName(EncryptionMode mode)
{
    switch (mode) {
      case EncryptionMode::kCounterMode: return "counter";
      case EncryptionMode::kCbc:         return "cbc";
    }
    return "?";
}

namespace
{

void
emit(std::string &out, const char *key, std::uint64_t value)
{
    char line[96];
    std::snprintf(line, sizeof(line), "%s=%llu\n", key,
                  (unsigned long long)value);
    out += line;
}

void
emit(std::string &out, const char *key, const char *value)
{
    out += key;
    out += '=';
    out += value;
    out += '\n';
}

void
emitCache(std::string &out, const char *prefix, const CacheConfig &c)
{
    char key[64];
    std::snprintf(key, sizeof(key), "%s.sizeBytes", prefix);
    emit(out, key, c.sizeBytes);
    std::snprintf(key, sizeof(key), "%s.assoc", prefix);
    emit(out, key, c.assoc);
    std::snprintf(key, sizeof(key), "%s.lineBytes", prefix);
    emit(out, key, c.lineBytes);
    std::snprintf(key, sizeof(key), "%s.hitLatency", prefix);
    emit(out, key, c.hitLatency);
}

} // namespace

std::string
serializeConfig(const SimConfig &cfg)
{
    std::string out;
    out.reserve(1536);
    out += "acp-config-v2\n";

    // pipeline
    emit(out, "fetchWidth", cfg.fetchWidth);
    emit(out, "decodeWidth", cfg.decodeWidth);
    emit(out, "issueWidth", cfg.issueWidth);
    emit(out, "commitWidth", cfg.commitWidth);
    emit(out, "ruuSize", cfg.ruuSize);
    emit(out, "lsqSize", cfg.lsqSize);
    emit(out, "storeBufferSize", cfg.storeBufferSize);

    // functional units
    emit(out, "intAluUnits", cfg.intAluUnits);
    emit(out, "intMulUnits", cfg.intMulUnits);
    emit(out, "memPorts", cfg.memPorts);
    emit(out, "fpAddUnits", cfg.fpAddUnits);
    emit(out, "fpMulUnits", cfg.fpMulUnits);

    // branch prediction
    emit(out, "bimodalEntries", cfg.bimodalEntries);
    emit(out, "btbEntries", cfg.btbEntries);
    emit(out, "rasEntries", cfg.rasEntries);
    emit(out, "mispredictPenalty", cfg.mispredictPenalty);

    // caches
    emitCache(out, "l1i", cfg.l1i);
    emitCache(out, "l1d", cfg.l1d);
    emitCache(out, "l2", cfg.l2);

    // TLBs
    emit(out, "tlbEntries", cfg.tlbEntries);
    emit(out, "tlbAssoc", cfg.tlbAssoc);
    emit(out, "pageBytes", cfg.pageBytes);
    emit(out, "tlbMissPenalty", cfg.tlbMissPenalty);

    // DRAM / bus
    emit(out, "busClockRatio", cfg.busClockRatio);
    emit(out, "busWidthBytes", cfg.busWidthBytes);
    emit(out, "casLatency", cfg.casLatency);
    emit(out, "prechargeLatency", cfg.prechargeLatency);
    emit(out, "rasToCasLatency", cfg.rasToCasLatency);
    emit(out, "dramBanks", cfg.dramBanks);
    emit(out, "dramRowBytes", cfg.dramRowBytes);
    emit(out, "maxOutstandingFetches", cfg.maxOutstandingFetches);
    emit(out, "macTransferBeats", cfg.macTransferBeats);

    // secure memory
    emit(out, "decryptLatency", cfg.decryptLatency);
    emit(out, "authLatency", cfg.authLatency);
    emit(out, "authEngineInterval", cfg.authEngineInterval);
    emitCache(out, "counterCache", cfg.counterCache);
    emit(out, "counterBytes", cfg.counterBytes);
    emit(out, "encryptionMode", encryptionModeName(cfg.encryptionMode));
    emit(out, "counterPrediction", cfg.counterPrediction ? 1 : 0);
    emit(out, "counterPredictRegionBytes", cfg.counterPredictRegionBytes);
    emit(out, "counterPredictWindow", cfg.counterPredictWindow);

    // hash tree
    emit(out, "hashTreeEnabled", cfg.hashTreeEnabled ? 1 : 0);
    emitCache(out, "hashTreeCache", cfg.hashTreeCache);
    emit(out, "treeHashLatency", cfg.treeHashLatency);
    emit(out, "protectedBytes", cfg.protectedBytes);

    // address obfuscation
    emitCache(out, "remapCache", cfg.remapCache);
    emit(out, "remapEntryBytes", cfg.remapEntryBytes);

    // policy / run control
    emit(out, "policy", core::policyName(cfg.policy));
    emit(out, "fetchGateDrain", cfg.fetchGateDrain ? 1 : 0);
    emit(out, "memoryBytes", cfg.memoryBytes);
    emit(out, "rngSeed", cfg.rngSeed);

    // multi-core
    emit(out, "numCores", cfg.numCores);
    {
        std::string policies;
        for (core::AuthPolicy p : cfg.corePolicies) {
            if (!policies.empty())
                policies += ',';
            policies += core::policyName(p);
        }
        emit(out, "corePolicies", policies.c_str());
        std::string workloads;
        for (const std::string &w : cfg.coreWorkloads) {
            if (!workloads.empty())
                workloads += ',';
            workloads += w;
        }
        emit(out, "coreWorkloads", workloads.c_str());
    }

    return out;
}

namespace
{

bool
parseU64(const std::string &value, std::uint64_t &out)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::strtoull(value.c_str(), nullptr, 10);
    return true;
}

template <typename T>
bool
assignU64(const std::string &value, T &field)
{
    std::uint64_t v = 0;
    if (!parseU64(value, v))
        return false;
    field = T(v);
    return true;
}

bool
assignBool(const std::string &value, bool &field)
{
    if (value == "0" || value == "1") {
        field = value == "1";
        return true;
    }
    return false;
}

/** "l2.assoc" -> the assoc field of cfg.l2, and so on. */
bool
applyCacheValue(CacheConfig &c, const std::string &sub,
                const std::string &value)
{
    if (sub == "sizeBytes")
        return assignU64(value, c.sizeBytes);
    if (sub == "assoc")
        return assignU64(value, c.assoc);
    if (sub == "lineBytes")
        return assignU64(value, c.lineBytes);
    if (sub == "hitLatency")
        return assignU64(value, c.hitLatency);
    return false;
}

std::vector<std::string>
splitCommaList(const std::string &text)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t cut = text.find(',', pos);
        if (cut == std::string::npos)
            cut = text.size();
        if (cut > pos)
            parts.push_back(text.substr(pos, cut - pos));
        pos = cut + 1;
    }
    return parts;
}

} // namespace

bool
applyConfigValue(SimConfig &cfg, const std::string &key,
                 const std::string &value, std::string *err)
{
    auto bad = [&](const char *what) {
        if (err)
            *err = std::string(what) + " '" + key + "=" + value + "'";
        return false;
    };

    // Nested cache geometries: "<prefix>.<field>".
    std::size_t dot = key.find('.');
    if (dot != std::string::npos) {
        std::string prefix = key.substr(0, dot);
        std::string sub = key.substr(dot + 1);
        CacheConfig *c = nullptr;
        if (prefix == "l1i")
            c = &cfg.l1i;
        else if (prefix == "l1d")
            c = &cfg.l1d;
        else if (prefix == "l2")
            c = &cfg.l2;
        else if (prefix == "counterCache")
            c = &cfg.counterCache;
        else if (prefix == "hashTreeCache")
            c = &cfg.hashTreeCache;
        else if (prefix == "remapCache")
            c = &cfg.remapCache;
        if (!c)
            return bad("unknown config key");
        if (!applyCacheValue(*c, sub, value))
            return bad("bad config value");
        return true;
    }

    bool ok = false;
    if (key == "fetchWidth")
        ok = assignU64(value, cfg.fetchWidth);
    else if (key == "decodeWidth")
        ok = assignU64(value, cfg.decodeWidth);
    else if (key == "issueWidth")
        ok = assignU64(value, cfg.issueWidth);
    else if (key == "commitWidth")
        ok = assignU64(value, cfg.commitWidth);
    else if (key == "ruuSize")
        ok = assignU64(value, cfg.ruuSize);
    else if (key == "lsqSize")
        ok = assignU64(value, cfg.lsqSize);
    else if (key == "storeBufferSize")
        ok = assignU64(value, cfg.storeBufferSize);
    else if (key == "intAluUnits")
        ok = assignU64(value, cfg.intAluUnits);
    else if (key == "intMulUnits")
        ok = assignU64(value, cfg.intMulUnits);
    else if (key == "memPorts")
        ok = assignU64(value, cfg.memPorts);
    else if (key == "fpAddUnits")
        ok = assignU64(value, cfg.fpAddUnits);
    else if (key == "fpMulUnits")
        ok = assignU64(value, cfg.fpMulUnits);
    else if (key == "bimodalEntries")
        ok = assignU64(value, cfg.bimodalEntries);
    else if (key == "btbEntries")
        ok = assignU64(value, cfg.btbEntries);
    else if (key == "rasEntries")
        ok = assignU64(value, cfg.rasEntries);
    else if (key == "mispredictPenalty")
        ok = assignU64(value, cfg.mispredictPenalty);
    else if (key == "tlbEntries")
        ok = assignU64(value, cfg.tlbEntries);
    else if (key == "tlbAssoc")
        ok = assignU64(value, cfg.tlbAssoc);
    else if (key == "pageBytes")
        ok = assignU64(value, cfg.pageBytes);
    else if (key == "tlbMissPenalty")
        ok = assignU64(value, cfg.tlbMissPenalty);
    else if (key == "busClockRatio")
        ok = assignU64(value, cfg.busClockRatio);
    else if (key == "busWidthBytes")
        ok = assignU64(value, cfg.busWidthBytes);
    else if (key == "casLatency")
        ok = assignU64(value, cfg.casLatency);
    else if (key == "prechargeLatency")
        ok = assignU64(value, cfg.prechargeLatency);
    else if (key == "rasToCasLatency")
        ok = assignU64(value, cfg.rasToCasLatency);
    else if (key == "dramBanks")
        ok = assignU64(value, cfg.dramBanks);
    else if (key == "dramRowBytes")
        ok = assignU64(value, cfg.dramRowBytes);
    else if (key == "maxOutstandingFetches")
        ok = assignU64(value, cfg.maxOutstandingFetches);
    else if (key == "macTransferBeats")
        ok = assignU64(value, cfg.macTransferBeats);
    else if (key == "decryptLatency")
        ok = assignU64(value, cfg.decryptLatency);
    else if (key == "authLatency")
        ok = assignU64(value, cfg.authLatency);
    else if (key == "authEngineInterval")
        ok = assignU64(value, cfg.authEngineInterval);
    else if (key == "counterBytes")
        ok = assignU64(value, cfg.counterBytes);
    else if (key == "encryptionMode") {
        if (value == "counter") {
            cfg.encryptionMode = EncryptionMode::kCounterMode;
            ok = true;
        } else if (value == "cbc") {
            cfg.encryptionMode = EncryptionMode::kCbc;
            ok = true;
        }
    } else if (key == "counterPrediction")
        ok = assignBool(value, cfg.counterPrediction);
    else if (key == "counterPredictRegionBytes")
        ok = assignU64(value, cfg.counterPredictRegionBytes);
    else if (key == "counterPredictWindow")
        ok = assignU64(value, cfg.counterPredictWindow);
    else if (key == "hashTreeEnabled")
        ok = assignBool(value, cfg.hashTreeEnabled);
    else if (key == "treeHashLatency")
        ok = assignU64(value, cfg.treeHashLatency);
    else if (key == "protectedBytes")
        ok = assignU64(value, cfg.protectedBytes);
    else if (key == "remapEntryBytes")
        ok = assignU64(value, cfg.remapEntryBytes);
    else if (key == "policy")
        ok = core::policyFromName(value, cfg.policy);
    else if (key == "fetchGateDrain")
        ok = assignBool(value, cfg.fetchGateDrain);
    else if (key == "memoryBytes")
        ok = assignU64(value, cfg.memoryBytes);
    else if (key == "rngSeed")
        ok = assignU64(value, cfg.rngSeed);
    else if (key == "numCores")
        ok = assignU64(value, cfg.numCores);
    else if (key == "corePolicies") {
        cfg.corePolicies.clear();
        ok = true;
        for (const std::string &name : splitCommaList(value)) {
            core::AuthPolicy p;
            if (!core::policyFromName(name, p)) {
                ok = false;
                break;
            }
            cfg.corePolicies.push_back(p);
        }
    } else if (key == "coreWorkloads") {
        cfg.coreWorkloads = splitCommaList(value);
        ok = true;
    } else {
        return bad("unknown config key");
    }
    if (!ok)
        return bad("bad config value");
    return true;
}

bool
parseConfig(const std::string &text, SimConfig &cfg, std::string *err)
{
    cfg = SimConfig{};
    bool sawHeader = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            if (line != "acp-config-v2") {
                if (err)
                    *err = "unknown config header '" + line + "'";
                return false;
            }
            sawHeader = true;
            continue;
        }
        if (!applyConfigValue(cfg, line.substr(0, eq),
                              line.substr(eq + 1), err))
            return false;
    }
    if (!sawHeader) {
        if (err)
            *err = "missing acp-config-v2 header";
        return false;
    }
    return true;
}

std::string
configDigest(const SimConfig &cfg)
{
    std::string text = serializeConfig(cfg);
    auto digest = crypto::Sha256::digest(
        reinterpret_cast<const std::uint8_t *>(text.data()), text.size());
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(2 * digest.size());
    for (std::uint8_t byte : digest) {
        out += hex[byte >> 4];
        out += hex[byte & 0xf];
    }
    return out;
}

} // namespace acp::sim
