#include "sim/config_io.hh"

#include <cstdio>

#include "crypto/sha256.hh"

namespace acp::sim
{

// Tripwire: if this fires you added/removed/resized a SimConfig
// field. Add it to serializeConfig() below (new fields invalidate
// every cached experiment result, which is exactly the point) and
// update the expected size. Exceptions: the observability fields
// (traceMask, statsInterval, profileEnabled, hostStats) are
// deliberately NOT serialized — tracing, interval stats and path
// profiling are strictly passive, so an observed run is bit-identical
// to (and shares its cached result with) the unobserved one. Runs
// with observability enabled are made uncacheable at the exp::Point
// level instead. hostStats is excluded for the same reason as the
// trace fields: sim.host.* self-metrics measure the simulator, never
// the simulated machine.
#if defined(__x86_64__) && defined(__linux__)
static_assert(sizeof(SimConfig) == 432,
              "SimConfig layout changed: update serializeConfig() in "
              "config_io.cc, then the expected size here");
#endif

const char *
encryptionModeName(EncryptionMode mode)
{
    switch (mode) {
      case EncryptionMode::kCounterMode: return "counter";
      case EncryptionMode::kCbc:         return "cbc";
    }
    return "?";
}

namespace
{

void
emit(std::string &out, const char *key, std::uint64_t value)
{
    char line[96];
    std::snprintf(line, sizeof(line), "%s=%llu\n", key,
                  (unsigned long long)value);
    out += line;
}

void
emit(std::string &out, const char *key, const char *value)
{
    out += key;
    out += '=';
    out += value;
    out += '\n';
}

void
emitCache(std::string &out, const char *prefix, const CacheConfig &c)
{
    char key[64];
    std::snprintf(key, sizeof(key), "%s.sizeBytes", prefix);
    emit(out, key, c.sizeBytes);
    std::snprintf(key, sizeof(key), "%s.assoc", prefix);
    emit(out, key, c.assoc);
    std::snprintf(key, sizeof(key), "%s.lineBytes", prefix);
    emit(out, key, c.lineBytes);
    std::snprintf(key, sizeof(key), "%s.hitLatency", prefix);
    emit(out, key, c.hitLatency);
}

} // namespace

std::string
serializeConfig(const SimConfig &cfg)
{
    std::string out;
    out.reserve(1536);
    out += "acp-config-v2\n";

    // pipeline
    emit(out, "fetchWidth", cfg.fetchWidth);
    emit(out, "decodeWidth", cfg.decodeWidth);
    emit(out, "issueWidth", cfg.issueWidth);
    emit(out, "commitWidth", cfg.commitWidth);
    emit(out, "ruuSize", cfg.ruuSize);
    emit(out, "lsqSize", cfg.lsqSize);
    emit(out, "storeBufferSize", cfg.storeBufferSize);

    // functional units
    emit(out, "intAluUnits", cfg.intAluUnits);
    emit(out, "intMulUnits", cfg.intMulUnits);
    emit(out, "memPorts", cfg.memPorts);
    emit(out, "fpAddUnits", cfg.fpAddUnits);
    emit(out, "fpMulUnits", cfg.fpMulUnits);

    // branch prediction
    emit(out, "bimodalEntries", cfg.bimodalEntries);
    emit(out, "btbEntries", cfg.btbEntries);
    emit(out, "rasEntries", cfg.rasEntries);
    emit(out, "mispredictPenalty", cfg.mispredictPenalty);

    // caches
    emitCache(out, "l1i", cfg.l1i);
    emitCache(out, "l1d", cfg.l1d);
    emitCache(out, "l2", cfg.l2);

    // TLBs
    emit(out, "tlbEntries", cfg.tlbEntries);
    emit(out, "tlbAssoc", cfg.tlbAssoc);
    emit(out, "pageBytes", cfg.pageBytes);
    emit(out, "tlbMissPenalty", cfg.tlbMissPenalty);

    // DRAM / bus
    emit(out, "busClockRatio", cfg.busClockRatio);
    emit(out, "busWidthBytes", cfg.busWidthBytes);
    emit(out, "casLatency", cfg.casLatency);
    emit(out, "prechargeLatency", cfg.prechargeLatency);
    emit(out, "rasToCasLatency", cfg.rasToCasLatency);
    emit(out, "dramBanks", cfg.dramBanks);
    emit(out, "dramRowBytes", cfg.dramRowBytes);
    emit(out, "maxOutstandingFetches", cfg.maxOutstandingFetches);
    emit(out, "macTransferBeats", cfg.macTransferBeats);

    // secure memory
    emit(out, "decryptLatency", cfg.decryptLatency);
    emit(out, "authLatency", cfg.authLatency);
    emit(out, "authEngineInterval", cfg.authEngineInterval);
    emitCache(out, "counterCache", cfg.counterCache);
    emit(out, "counterBytes", cfg.counterBytes);
    emit(out, "encryptionMode", encryptionModeName(cfg.encryptionMode));
    emit(out, "counterPrediction", cfg.counterPrediction ? 1 : 0);
    emit(out, "counterPredictRegionBytes", cfg.counterPredictRegionBytes);
    emit(out, "counterPredictWindow", cfg.counterPredictWindow);

    // hash tree
    emit(out, "hashTreeEnabled", cfg.hashTreeEnabled ? 1 : 0);
    emitCache(out, "hashTreeCache", cfg.hashTreeCache);
    emit(out, "treeHashLatency", cfg.treeHashLatency);
    emit(out, "protectedBytes", cfg.protectedBytes);

    // address obfuscation
    emitCache(out, "remapCache", cfg.remapCache);
    emit(out, "remapEntryBytes", cfg.remapEntryBytes);

    // policy / run control
    emit(out, "policy", core::policyName(cfg.policy));
    emit(out, "fetchGateDrain", cfg.fetchGateDrain ? 1 : 0);
    emit(out, "memoryBytes", cfg.memoryBytes);
    emit(out, "rngSeed", cfg.rngSeed);

    // multi-core
    emit(out, "numCores", cfg.numCores);
    {
        std::string policies;
        for (core::AuthPolicy p : cfg.corePolicies) {
            if (!policies.empty())
                policies += ',';
            policies += core::policyName(p);
        }
        emit(out, "corePolicies", policies.c_str());
        std::string workloads;
        for (const std::string &w : cfg.coreWorkloads) {
            if (!workloads.empty())
                workloads += ',';
            workloads += w;
        }
        emit(out, "coreWorkloads", workloads.c_str());
    }

    return out;
}

std::string
configDigest(const SimConfig &cfg)
{
    std::string text = serializeConfig(cfg);
    auto digest = crypto::Sha256::digest(
        reinterpret_cast<const std::uint8_t *>(text.data()), text.size());
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(2 * digest.size());
    for (std::uint8_t byte : digest) {
        out += hex[byte >> 4];
        out += hex[byte & 0xf];
    }
    return out;
}

} // namespace acp::sim
