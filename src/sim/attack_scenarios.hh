/**
 * @file
 * End-to-end attack scenario runner: stages each of the paper's
 * memory-fetch side-channel exploits (Section 3.2) against a live
 * simulated system under a chosen authentication control point, and
 * reports what the adversary observed — the empirical basis for the
 * paper's Table 2.
 */

#ifndef ACP_SIM_ATTACK_SCENARIOS_HH
#define ACP_SIM_ATTACK_SCENARIOS_HH

#include <cstdint>

#include "common/types.hh"
#include "core/auth_policy.hh"
#include "obs/path_profiler.hh"

namespace acp::sim
{

/** The staged exploits. */
enum class Exploit
{
    /** Linked-list NULL -> pointer conversion (Figure 1). */
    kPointerConversion,
    /** One probe of the comparison-constant attack (Figure 2). */
    kBinarySearch,
    /** Code-substitution disclosing kernel (Figure 4). */
    kDisclosingKernel,
    /** Disclosing kernel variant leaking through an I/O port. */
    kIoDisclosure,
};

/** Name for reports. */
const char *exploitName(Exploit exploit);

/** What happened when the exploit ran. */
struct ScenarioResult
{
    core::AuthPolicy policy;
    Exploit exploit;
    /** Secret-derived information observed on the bus/IO channel
     *  before the exception (or at all, when none fired). */
    bool leaked = false;
    Cycle firstLeakCycle = 0;
    std::size_t leakCount = 0;
    /** Authentication exception outcome. */
    bool exceptionRaised = false;
    bool precise = false;
    Cycle exceptionCycle = 0;
    /** Tainted architectural effects (Table 2 state columns). */
    std::uint64_t taintedCommits = 0;
    std::uint64_t taintedStoreDrains = 0;
    Cycle cyclesRun = 0;
    /**
     * Path-profiler leak audit of the same run: the machine-checked
     * generalisation of @ref leaked (no per-exploit predicate — any
     * novel demand-fetch address first exposed while unverified
     * tampered data was usable counts).
     */
    obs::LeakAudit audit;
};

/** Stage @p exploit under @p policy on a fresh system. */
ScenarioResult runExploit(Exploit exploit, core::AuthPolicy policy,
                          std::uint64_t seed = 1);

/** Full adaptive binary-search recovery of a planted secret. */
struct BinarySearchRecovery
{
    std::uint64_t secret = 0;
    std::uint64_t recovered = 0;
    unsigned trials = 0;
    bool success = false;
};

/**
 * Run the adaptive attack: one fresh system per probe, tampering the
 * comparison constant to the current pivot and reading the branch
 * direction off the bus trace. @p bits of the secret are recovered
 * (log2 trials, exactly as the paper's Section 3.2.2 analysis).
 */
BinarySearchRecovery recoverSecretViaBinarySearch(core::AuthPolicy policy,
                                                  std::uint64_t secret,
                                                  unsigned bits);

} // namespace acp::sim

#endif // ACP_SIM_ATTACK_SCENARIOS_HH
