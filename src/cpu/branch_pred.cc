#include "cpu/branch_pred.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace acp::cpu
{

BranchPredictor::BranchPredictor(const sim::SimConfig &cfg)
    : bimodal_(cfg.bimodalEntries, 2), // weakly taken
      btb_(cfg.btbEntries), ras_(cfg.rasEntries, 0), stats_("bpred")
{
    if (!isPowerOfTwo(cfg.bimodalEntries) || !isPowerOfTwo(cfg.btbEntries))
        acp_fatal("predictor table sizes must be powers of two");
    stats_.addCounter("lookups", &lookups_);
    stats_.addCounter("ras_pushes", &rasPushes_);
    stats_.addCounter("ras_pops", &rasPops_);
}

unsigned
BranchPredictor::bimodalIndex(Addr pc) const
{
    return unsigned((pc >> 2) & (bimodal_.size() - 1));
}

unsigned
BranchPredictor::btbIndex(Addr pc) const
{
    return unsigned((pc >> 2) & (btb_.size() - 1));
}

Prediction
BranchPredictor::predict(Addr pc, const isa::DecodedInst &inst)
{
    ++lookups_;
    Prediction pred;

    if (inst.op == isa::Op::kJal) {
        pred.taken = true;
        pred.target = inst.relTarget(pc);
        if (inst.rd == 1) { // call: push return address
            ++rasPushes_;
            ras_[rasTop_ % ras_.size()] = pc + isa::kInstrBytes;
            ++rasTop_;
        }
        return pred;
    }

    if (inst.op == isa::Op::kJalr) {
        pred.taken = true;
        if (inst.rd == 0 && inst.rs1 == 1 && rasTop_ > 0) {
            // Return through the link register: pop RAS.
            ++rasPops_;
            --rasTop_;
            pred.target = ras_[rasTop_ % ras_.size()];
        } else {
            const BtbEntry &entry = btb_[btbIndex(pc)];
            pred.target = (entry.valid && entry.pc == pc)
                              ? entry.target
                              : pc + isa::kInstrBytes;
            if (inst.rd == 1) { // indirect call
                ++rasPushes_;
                ras_[rasTop_ % ras_.size()] = pc + isa::kInstrBytes;
                ++rasTop_;
            }
        }
        return pred;
    }

    // Conditional branch: bimodal direction, decoded target.
    pred.taken = bimodal_[bimodalIndex(pc)] >= 2;
    pred.target = inst.relTarget(pc);
    return pred;
}

void
BranchPredictor::update(Addr pc, const isa::DecodedInst &inst, bool taken,
                        Addr target)
{
    if (inst.isBranch()) {
        std::uint8_t &counter = bimodal_[bimodalIndex(pc)];
        if (taken && counter < 3)
            ++counter;
        else if (!taken && counter > 0)
            --counter;
    }
    if (inst.op == isa::Op::kJalr) {
        BtbEntry &entry = btb_[btbIndex(pc)];
        entry.valid = true;
        entry.pc = pc;
        entry.target = target;
    }
}

} // namespace acp::cpu
