/**
 * @file
 * Out-of-order core in the SimpleScalar RUU style: an 8-wide
 * fetch/decode/issue/commit pipeline with a unified Register Update
 * Unit (ROB + reservation stations), a load/store queue with
 * store-to-load forwarding, a post-commit store(-release) buffer, and
 * speculative execution down predicted paths.
 *
 * The four *authentication control points* of the paper are
 * implemented here and in the memory hierarchy:
 *   issue  — fill data unusable until verified (hierarchy usableAt)
 *   commit — ROB head held until own-line + operand-line tags verify
 *   write  — committed stores parked in the store-release buffer
 *            until their LastRequest tag verifies
 *   fetch  — external fetches gated in the secure memory controller
 *            on the LastRequest tag captured at issue
 *
 * Speculative loads issue real bus transactions before commit — this
 * is precisely the side channel the paper studies, and the attack
 * examples observe it through the bus trace.
 */

#ifndef ACP_CPU_OOO_CORE_HH
#define ACP_CPU_OOO_CORE_HH

#include <array>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/branch_pred.hh"
#include "cpu/flat_mem.hh"
#include "cpu/func_executor.hh"
#include "isa/instr.hh"
#include "obs/heartbeat.hh"
#include "obs/interval.hh"
#include "obs/stall.hh"
#include "obs/trace.hh"
#include "secmem/mem_hierarchy.hh"
#include "sim/component.hh"
#include "sim/config.hh"

namespace acp::cpu
{

/** Why the core stopped. */
enum class StopReason
{
    kRunning,
    kHalted,
    kSecurityException,
    kInstLimit,
    kCycleLimit,
};

/** Stable display name of a stop reason (shared by every sink). */
const char *stopReasonName(StopReason reason);

/** The out-of-order core: an active component of the system. A
 *  single-core system has one; a multi-core system has numCores of
 *  them registered as clients of one shared MemHierarchy. */
class OooCore : public sim::Component
{
  public:
    /**
     * @p client is the hierarchy client id this core issues memory
     * traffic as (from MemHierarchy::registerClient); @p name is the
     * stat-group / component name — exactly "core" for a single-core
     * system (bit-identical stat surface), "cpuN.core" otherwise.
     * The core runs the per-client policy the shared controller
     * resolved (SecureMemCtrl::policyFor), not necessarily the global
     * cfg.policy.
     */
    OooCore(const sim::SimConfig &cfg, secmem::MemHierarchy &hier,
            Addr entry, unsigned client = 0,
            const std::string &name = "core");
    ~OooCore() override;

    /**
     * Enable commit-time co-simulation against a functional shadow
     * (non-owning; typically the System's reference machine, already
     * advanced to the same architectural point). Never combine with
     * ciphertext tampering — the shadow models the untampered program.
     */
    void setCosimShadow(FuncExecutor *shadow) { shadow_ = shadow; }

    // ----- run control (System::measureTimed drives these) --------------
    /**
     * Arm a measurement window: run until @p max_insts commits,
     * @p max_cycles elapse, HALT commits, or a security exception
     * fires. The window executes through the scheduler (seed with
     * wakeAt(cycles()) and drain); runReason() reports the outcome.
     */
    void beginRun(std::uint64_t max_insts, std::uint64_t max_cycles);

    /** Outcome of the armed window: a limit, or why the core stopped. */
    StopReason runReason() const;

    // ----- sim::Component ------------------------------------------------
    /**
     * Simulate cycle @p now; on an idle outcome, batch-account the
     * stall window analytically and jump to the next cycle anything
     * can change (the event-driven fast path). Returns the next cycle
     * to run, or kCycleNever once stopped / past a limit.
     */
    Cycle onWake(Cycle now) override;
    void visitStats(sim::StatGroupVisitor &v) override { v.group(stats_); }

    // ----- results ------------------------------------------------------
    Cycle cycles() const { return cycle_; }
    std::uint64_t instsCommitted() const { return committed_.value(); }
    double
    ipc() const
    {
        return cycle_ ? double(instsCommitted()) / double(cycle_) : 0.0;
    }
    StopReason stopReason() const { return stopReason_; }
    bool securityException() const
    {
        return stopReason_ == StopReason::kSecurityException;
    }
    /** Precise exceptions pin the fault to an instruction boundary. */
    bool exceptionPrecise() const { return exceptionPrecise_; }
    Cycle exceptionCycle() const { return exceptionCycle_; }

    /** Architectural register value (committed state). */
    std::uint64_t reg(unsigned idx) const { return regs_[idx & 31]; }
    void
    setReg(unsigned idx, std::uint64_t v)
    {
        if ((idx & 31) != 0)
            regs_[idx & 31] = v;
    }

    /** Zero the measurement statistics (start of the timed window). */
    void resetStats();

    /**
     * Emit a one-line commit trace for the next @p insts committed
     * instructions to @p out (cycle, pc, disassembly, result) — the
     * debugging view of architectural progress.
     */
    void traceCommits(std::FILE *out, std::uint64_t insts);

    /** Attach a passive event trace sink (nullptr detaches). */
    void setTrace(obs::TraceBuffer *trace) { trace_ = trace; }

    /** Attach a passive interval-statistics recorder. */
    void setIntervalRecorder(obs::IntervalRecorder *rec) { recorder_ = rec; }

    /** Attach a passive heartbeat feed (nullptr detaches). Like the
     *  trace and recorder sinks, the heartbeat only reads statistics
     *  the core maintains anyway — it never changes timing. */
    void setHeartbeat(obs::HeartbeatRun *hb) { heartbeat_ = hb; }

    /** Cumulative per-cause stall cycles of the stats window. */
    obs::StallArray stallCycles() const;

    /** Flush the recorder's partial tail interval (window end). */
    void flushIntervals();

    StatGroup &stats() { return stats_; }

  private:
    // ----- pipeline structures -------------------------------------------
    struct RuuEntry
    {
        bool valid = false;
        std::uint64_t seq = 0; // dynamic instruction number
        Addr pc = 0;
        isa::DecodedInst inst;

        // Operand tracking: producer RUU slot + its seq, or -1.
        int prod1 = -1, prod2 = -1;
        std::uint64_t prod1Seq = 0, prod2Seq = 0;
        bool v1Ready = false, v2Ready = false;
        std::uint64_t v1 = 0, v2 = 0;

        bool issued = false;
        bool completed = false;
        Cycle readyAt = 0;
        /** For loads: cycle the data is physically on-chip (equals
         *  readyAt except under authen-then-issue, where the gap is
         *  the verification wait). Stall attribution only. */
        Cycle dataReadyAt = 0;
        /** For loads that went off-chip: the primary transfer's bus
         *  request/grant window (kCycleNever when it never left the
         *  chip). busGrantAt > busReqAt means the shared-bus arbiter
         *  queued it behind other traffic. Stall attribution only. */
        Cycle busReqAt = kCycleNever;
        Cycle busGrantAt = kCycleNever;
        std::uint64_t result = 0;
        bool writesRd = false;

        // Memory
        bool isLoad = false, isStore = false;
        Addr memAddr = 0;
        unsigned memBytes = 0;
        std::uint64_t storeValue = 0;

        // Control
        bool isControl = false;
        bool predTaken = false;
        Addr predTarget = 0;
        bool taken = false;
        Addr actualNext = 0;
        bool mispredict = false;

        // System
        bool isOut = false;
        std::uint64_t outPort = 0;
        bool isHalt = false;

        // Security tags
        AuthSeq fetchSeq = kNoAuthSeq; // I-line auth request
        AuthSeq dataSeq = kNoAuthSeq;  // loaded-data auth request
        AuthSeq issueTag = kNoAuthSeq; // LastRequest at issue
        /** Precise dataflow taint: this instruction's value derives
         *  from a line whose verification (functionally) failed. */
        bool tainted = false;
    };

    struct FetchedInst
    {
        Addr pc = 0;
        isa::DecodedInst inst;
        bool predTaken = false;
        Addr predTarget = 0;
        AuthSeq fetchSeq = kNoAuthSeq;
    };

    struct StoreBufEntry
    {
        Addr addr = 0;
        unsigned bytes = 0;
        std::uint64_t value = 0;
        AuthSeq tag = kNoAuthSeq; // LastRequest at issue of the store
        bool tainted = false;
        bool isOut = false;
        std::uint64_t outPort = 0;
    };

    // ----- the cycle ------------------------------------------------------
    /** Advance one cycle (the legacy unit of work). Returns false once
     *  stopped. Sets progress_ when any stage changed machine state. */
    bool tick();

    /**
     * First cycle >= cycle_ at which any stage predicate can change
     * while the machine is idle (the ready-set / oldest-unready index):
     * pending completions, gate verdicts, frontend restart, divider
     * availability, engine failures, and the no-progress panic bound.
     * Waking at extra cycles is harmless (an idle tick is replayed);
     * missing one would diverge from the polled loop.
     */
    Cycle nextWakeCycle() const;

    /**
     * Account @p n skipped idle cycles exactly as the polled loop
     * would have: per-cycle stall/occupancy bookkeeping batched
     * arithmetically, or walked per cycle when an interval recorder
     * needs the per-cycle feed. Machine state is frozen across the
     * window by construction, so this is bit-identical to ticking.
     */
    void accountIdleCycles(std::uint64_t n);

    // ----- stages ---------------------------------------------------------
    void stageComplete();
    void stageCommit();
    void stageStoreBufferDrain();
    void stageIssue();
    void stageDispatch();
    void stageFetch();

    // ----- helpers ----------------------------------------------------------
    unsigned ruuIndex(unsigned pos) const; // age position -> slot
    RuuEntry &entryAt(unsigned pos);
    void squashAfter(unsigned pos);
    void rebuildRenameMap();
    bool resolveOperand(RuuEntry &entry, int which);
    bool tryIssueMemOp(RuuEntry &entry, unsigned pos);
    /** Gate predicate: completed verification that also passed. */
    bool verifiedOk(AuthSeq seq) const;
    void raiseSecurityException(bool precise);
    bool checkEngineFailure();

    // ----- stall attribution (observability) ------------------------------
    /** Why the commit stage made no progress this cycle. */
    enum class CommitBlock : std::uint8_t { kNone, kAuthGate, kSbFull };
    /**
     * Charge the current cycle: commit-active, or exactly one stall
     * cause. Runs immediately after stageCommit, before the younger
     * stages mutate the RUU. Also feeds the interval recorder.
     */
    void accountCycle();
    /** Pick the single cause of a zero-commit cycle. */
    obs::StallCause classifyStall();
    /** Feed the heartbeat (no-op unless a period boundary passed; the
     *  nextSampleCycle() guard keeps the hot path to one compare). */
    void heartbeatSample(Cycle cycle);

    const sim::SimConfig &cfg_;
    secmem::MemHierarchy &hier_;
    /** Hierarchy client id all of this core's memory traffic carries. */
    unsigned client_ = 0;
    /** This core's resolved authen policy (cfg.corePolicies[client_]
     *  when present, else cfg.policy). */
    core::AuthPolicy policy_;
    BranchPredictor bpred_;

    // Architectural state
    std::vector<std::uint64_t> regs_;
    /** Per-register dataflow taint (only set when a tainted value
     *  commits, i.e. under policies without a commit gate). */
    std::vector<bool> regTainted_;
    Addr fetchPc_;
    Cycle fetchStallUntil_ = 0;

    // RUU circular buffer
    std::vector<RuuEntry> ruu_;
    unsigned ruuHead_ = 0;
    unsigned ruuCount_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::vector<int> renameMap_; // reg -> RUU slot (-1 = regfile)
    unsigned lsqUsed_ = 0;

    std::deque<FetchedInst> fetchQueue_;
    std::deque<StoreBufEntry> storeBuffer_;

    // FU availability (per cycle) + unpipelined units
    Cycle intDivFreeAt_ = 0;
    Cycle fpDivFreeAt_ = 0;

    Cycle cycle_ = 0;
    StopReason stopReason_ = StopReason::kRunning;
    bool exceptionPrecise_ = false;
    Cycle exceptionCycle_ = 0;
    std::uint64_t lastCommitCycle_ = 0;

    // Run-window bookkeeping (armed by beginRun)
    std::uint64_t runInstLimit_ = 0;
    Cycle runCycleLimit_ = 0;
    /** kInstLimit/kCycleLimit when a limit ended the window; limits do
     *  NOT set stopReason_ (the core can continue), matching the
     *  legacy run() contract. */
    StopReason runLimitHit_ = StopReason::kRunning;

    // Idle-window detection (event-driven loop)
    /** Did any stage change machine state this tick? */
    bool progress_ = false;
    /** Store-release drain blocked on its gate tag this tick. */
    bool drainBlocked_ = false;
    /** Which structure blocked dispatch this tick (for idle replay). */
    enum class DispatchBlock : std::uint8_t { kNone, kRuuFull, kLsqFull };
    DispatchBlock dispatchBlock_ = DispatchBlock::kNone;
    /** Stall cause accountCycle charged to this zero-commit tick. */
    obs::StallCause idleCause_ = obs::StallCause::kFrontend;

    // Co-simulation shadow (non-owning)
    FuncExecutor *shadow_ = nullptr;

    // Commit tracing
    std::FILE *traceOut_ = nullptr;
    std::uint64_t traceRemaining_ = 0;

    // Observability (passive: never feeds back into the model)
    obs::TraceBuffer *trace_ = nullptr;
    obs::IntervalRecorder *recorder_ = nullptr;
    obs::HeartbeatRun *heartbeat_ = nullptr;
    unsigned commitsThisCycle_ = 0;
    CommitBlock commitBlock_ = CommitBlock::kNone;
    /** Gate tag the commit stage last stalled on (for the trace's
     *  gate-release event). */
    AuthSeq lastAuthBlockSeq_ = kNoAuthSeq;
    /** Cause charged while the frontend sits out a fetch stall. */
    obs::StallCause fetchStallCause_ = obs::StallCause::kFrontend;
    /** Data-arrival cycle of the stalled instruction fetch (splits
     *  memory wait from verification wait under authen-then-issue). */
    Cycle fetchDataReadyAt_ = 0;

    // Statistics
    StatGroup stats_;
    StatCounter committed_;
    StatCounter fetched_;
    StatCounter issued_;
    StatCounter branches_;
    StatCounter mispredicts_;
    StatCounter loadsIssued_;
    StatCounter storesCommitted_;
    StatCounter loadForwards_;
    StatCounter authCommitStalls_;
    StatCounter storeReleaseStalls_;
    StatCounter sbFullStalls_;
    StatCounter ruuFullStalls_;
    StatCounter lsqFullStalls_;
    StatCounter squashedInsts_;
    /** Instructions committed whose gate tag covered a failed request
     *  (empirical "authenticated processor state" check, Table 2). */
    StatCounter taintedCommits_;
    /** Stores released to memory with a failed-or-later tag
     *  (empirical "authenticated memory state" check, Table 2). */
    StatCounter taintedStoreDrains_;
    /** Cycles elapsed in the stats window ("core.cycles"). */
    StatCounter statCycles_;
    /** Cycles in which at least one instruction committed. */
    StatCounter commitActiveCycles_;
    /** Per-cause stall cycles ("core.stall.<cause>"). Invariant:
     *  their sum equals cycles - commit_active_cycles. */
    std::array<StatCounter, obs::kNumStallCauses> stallCounters_;
    StatDistribution ruuOccupancy_;
    StatDistribution sbOccupancy_;

  public:
    std::uint64_t taintedCommits() const { return taintedCommits_.value(); }
    std::uint64_t
    taintedStoreDrains() const
    {
        return taintedStoreDrains_.value();
    }
};

} // namespace acp::cpu

#endif // ACP_CPU_OOO_CORE_HH
