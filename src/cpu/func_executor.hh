/**
 * @file
 * In-order functional executor over an abstract memory port. Serves
 * three roles: (1) SimPoint-style fast-forward before the timed
 * window (with the warm hierarchy port, so caches warm up), (2) the
 * architectural shadow for commit-time co-simulation of the OoO core,
 * and (3) a reference implementation for ISA tests.
 */

#ifndef ACP_CPU_FUNC_EXECUTOR_HH
#define ACP_CPU_FUNC_EXECUTOR_HH

#include <array>

#include "common/types.hh"
#include "cpu/flat_mem.hh"
#include "isa/instr.hh"
#include "isa/semantics.hh"

namespace acp::cpu
{

/** Memory port the executor runs against: a flat reference memory. */
class MemPort
{
  public:
    explicit MemPort(FlatMem &mem) : mem_(&mem) {}

    std::uint64_t
    read(Addr addr, unsigned bytes) const
    {
        return mem_->read(addr, bytes);
    }

    void
    write(Addr addr, unsigned bytes, std::uint64_t value) const
    {
        mem_->write(addr, bytes, value);
    }

    std::uint32_t fetch(Addr addr) const { return mem_->fetch(addr); }

  private:
    FlatMem *mem_;
};

/** What one retired instruction did (for co-simulation comparison). */
struct StepInfo
{
    Addr pc = 0;
    isa::DecodedInst inst;
    bool wroteRd = false;
    std::uint64_t rdValue = 0;
    bool isStore = false;
    Addr memAddr = 0;
    std::uint64_t storeValue = 0;
    unsigned memBytes = 0;
    bool halted = false;
    bool isOut = false;
    std::uint64_t outValue = 0;
    std::uint64_t outPort = 0;
    Addr nextPc = 0;
};

/** The executor. */
class FuncExecutor
{
  public:
    FuncExecutor(MemPort port, Addr entry);

    /** Execute one instruction; no-op (halted StepInfo) after HALT. */
    StepInfo step();

    /** Run up to @p max_insts or until HALT; returns count executed. */
    std::uint64_t run(std::uint64_t max_insts);

    Addr pc() const { return pc_; }
    bool halted() const { return halted_; }
    std::uint64_t instsExecuted() const { return insts_; }

    std::uint64_t reg(unsigned idx) const { return regs_[idx & 31]; }
    void
    setReg(unsigned idx, std::uint64_t v)
    {
        if ((idx & 31) != 0)
            regs_[idx & 31] = v;
    }

  private:
    MemPort port_;
    Addr pc_;
    bool halted_ = false;
    std::uint64_t insts_ = 0;
    std::array<std::uint64_t, 32> regs_{};
};

} // namespace acp::cpu

#endif // ACP_CPU_FUNC_EXECUTOR_HH
