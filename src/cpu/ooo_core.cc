#include "cpu/ooo_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/auth_policy.hh"
#include "isa/semantics.hh"

namespace acp::cpu
{

using core::gatesCommit;
using core::gatesFetch;
using core::gatesIssue;
using core::gatesWrite;
using core::verifies;

const char *
stopReasonName(StopReason reason)
{
    switch (reason) {
      case StopReason::kRunning:           return "running";
      case StopReason::kHalted:            return "halted";
      case StopReason::kSecurityException: return "security_exception";
      case StopReason::kInstLimit:         return "inst_limit";
      case StopReason::kCycleLimit:        return "cycle_limit";
    }
    return "?";
}

/** Cycles without a commit before the no-progress panic fires. */
constexpr Cycle kProgressPanicCycles = 1000000;

OooCore::OooCore(const sim::SimConfig &cfg, secmem::MemHierarchy &hier,
                 Addr entry, unsigned client, const std::string &name)
    : sim::Component(name), cfg_(cfg), hier_(hier), client_(client),
      policy_(hier.ctrl().policyFor(client)), bpred_(cfg), regs_(32, 0),
      regTainted_(32, false), fetchPc_(entry), ruu_(cfg.ruuSize),
      renameMap_(32, -1), stats_(name)
{
    stats_.addCounter("committed", &committed_);
    stats_.addCounter("fetched", &fetched_);
    stats_.addCounter("issued", &issued_);
    stats_.addCounter("branches", &branches_);
    stats_.addCounter("mispredicts", &mispredicts_);
    stats_.addCounter("loads_issued", &loadsIssued_);
    stats_.addCounter("stores_committed", &storesCommitted_);
    stats_.addCounter("load_forwards", &loadForwards_);
    stats_.addCounter("auth_commit_stalls", &authCommitStalls_);
    stats_.addCounter("store_release_stalls", &storeReleaseStalls_);
    stats_.addCounter("sb_full_stalls", &sbFullStalls_);
    stats_.addCounter("ruu_full_stalls", &ruuFullStalls_);
    stats_.addCounter("lsq_full_stalls", &lsqFullStalls_);
    stats_.addCounter("squashed", &squashedInsts_);
    stats_.addCounter("tainted_commits", &taintedCommits_);
    stats_.addCounter("tainted_store_drains", &taintedStoreDrains_);
    stats_.addCounter("cycles", &statCycles_);
    stats_.addCounter("commit_active_cycles", &commitActiveCycles_);
    for (unsigned i = 0; i < obs::kNumStallCauses; ++i)
        stats_.addCounter(std::string("stall.") +
                              obs::stallCauseName(obs::StallCause(i)),
                          &stallCounters_[i]);
    stats_.addDistribution("ruu_occupancy", &ruuOccupancy_);
    stats_.addDistribution("sb_occupancy", &sbOccupancy_);
}

OooCore::~OooCore() = default;

unsigned
OooCore::ruuIndex(unsigned pos) const
{
    // pos <= ruuCount_ <= ruuSize and ruuHead_ < ruuSize, so one
    // conditional subtract replaces the modulo on this hot path.
    unsigned idx = ruuHead_ + pos;
    if (idx >= cfg_.ruuSize)
        idx -= cfg_.ruuSize;
    return idx;
}

OooCore::RuuEntry &
OooCore::entryAt(unsigned pos)
{
    return ruu_[ruuIndex(pos)];
}

bool
OooCore::verifiedOk(AuthSeq seq) const
{
    const secmem::AuthEngine &eng =
        const_cast<secmem::MemHierarchy &>(hier_).ctrl().authEngine();
    if (seq == kNoAuthSeq)
        return true;
    // Only this core's own failed requests poison its gates: a
    // neighbour core fetching a tampered line raises *its* exception,
    // not ours (per-client failure view).
    if (eng.anyFailure(client_) && seq >= eng.firstFailedSeq(client_))
        return false; // a failed (or later) request never verifies
    return eng.verifiedBy(seq, cycle_);
}

void
OooCore::raiseSecurityException(bool precise)
{
    stopReason_ = StopReason::kSecurityException;
    exceptionPrecise_ = precise;
    exceptionCycle_ = cycle_;
}

bool
OooCore::checkEngineFailure()
{
    if (!verifies(policy_))
        return false;
    const secmem::AuthEngine &eng = hier_.ctrl().authEngine();
    if (!eng.anyFailure(client_) || cycle_ < eng.firstFailureCycle(client_))
        return false;
    raiseSecurityException(gatesCommit(policy_) || gatesIssue(policy_));
    return true;
}

void
OooCore::rebuildRenameMap()
{
    std::fill(renameMap_.begin(), renameMap_.end(), -1);
    for (unsigned pos = 0; pos < ruuCount_; ++pos) {
        RuuEntry &entry = entryAt(pos);
        if (entry.writesRd)
            renameMap_[entry.inst.destReg()] = int(ruuIndex(pos));
    }
}

void
OooCore::squashAfter(unsigned pos)
{
    while (ruuCount_ > pos + 1) {
        RuuEntry &entry = entryAt(ruuCount_ - 1);
        if (entry.isLoad || entry.isStore)
            --lsqUsed_;
        entry.valid = false;
        ++squashedInsts_;
        --ruuCount_;
    }
    rebuildRenameMap();
    fetchQueue_.clear();
}

bool
OooCore::resolveOperand(RuuEntry &entry, int which)
{
    bool &ready = (which == 1) ? entry.v1Ready : entry.v2Ready;
    if (ready)
        return true;
    std::uint64_t &value = (which == 1) ? entry.v1 : entry.v2;
    int prod = (which == 1) ? entry.prod1 : entry.prod2;
    std::uint64_t prod_seq = (which == 1) ? entry.prod1Seq : entry.prod2Seq;
    unsigned src = (which == 1) ? entry.inst.srcReg1()
                                : entry.inst.srcReg2();

    if (prod < 0) {
        value = regs_[src];
        entry.tainted = entry.tainted || regTainted_[src];
        ready = true;
        return true;
    }
    RuuEntry &producer = ruu_[prod];
    if (!producer.valid || producer.seq != prod_seq) {
        // Producer has committed: its value is architectural now.
        value = regs_[src];
        entry.tainted = entry.tainted || regTainted_[src];
        ready = true;
        return true;
    }
    if (producer.completed && producer.readyAt <= cycle_) {
        value = producer.result;
        entry.tainted = entry.tainted || producer.tainted;
        ready = true;
        return true;
    }
    return false;
}

bool
OooCore::tryIssueMemOp(RuuEntry &entry, unsigned pos)
{
    unsigned bytes = isa::memAccessBytes(entry.inst.op);
    Addr addr = entry.v1 + std::uint64_t(entry.inst.imm);
    entry.memAddr = addr;
    entry.memBytes = bytes;

    if (entry.isStore) {
        entry.storeValue = entry.v2;
        entry.readyAt = cycle_ + 1;
        return true;
    }

    // Load: memory disambiguation against older stores.
    // Scan from the youngest older memory op to the oldest; the first
    // overlapping store with a known address decides.
    for (int prior = int(pos) - 1; prior >= 0; --prior) {
        RuuEntry &older = entryAt(unsigned(prior));
        if (!older.isStore)
            continue;
        if (!older.issued)
            return false; // unknown store address: conservative stall
        Addr s_begin = older.memAddr;
        Addr s_end = older.memAddr + older.memBytes;
        Addr l_begin = addr;
        Addr l_end = addr + bytes;
        if (l_end <= s_begin || s_end <= l_begin)
            continue; // disjoint
        if (s_begin <= l_begin && l_end <= s_end) {
            // Full containment: forward from the store queue.
            std::uint64_t raw = older.storeValue >>
                                (8 * (l_begin - s_begin));
            if (bytes < 8)
                raw &= (1ULL << (8 * bytes)) - 1;
            entry.result = isa::adjustLoadValue(entry.inst.op, raw);
            entry.readyAt = cycle_ + 2;
            entry.dataReadyAt = entry.readyAt; // on-chip forward
            entry.dataSeq = kNoAuthSeq; // data never left the chip
            entry.tainted = entry.tainted || older.tainted;
            ++loadForwards_;
            return true;
        }
        return false; // partial overlap: wait for the store to drain
    }

    // Post-commit store buffer (youngest first).
    for (auto it = storeBuffer_.rbegin(); it != storeBuffer_.rend(); ++it) {
        if (it->isOut)
            continue;
        Addr s_begin = it->addr;
        Addr s_end = it->addr + it->bytes;
        if (addr + bytes <= s_begin || s_end <= addr)
            continue;
        if (s_begin <= addr && addr + bytes <= s_end) {
            std::uint64_t raw = it->value >> (8 * (addr - s_begin));
            if (bytes < 8)
                raw &= (1ULL << (8 * bytes)) - 1;
            entry.result = isa::adjustLoadValue(entry.inst.op, raw);
            entry.readyAt = cycle_ + 2;
            entry.dataReadyAt = entry.readyAt;
            entry.dataSeq = kNoAuthSeq;
            entry.tainted = entry.tainted || it->tainted;
            ++loadForwards_;
            return true;
        }
        return false; // partial overlap with a pending release
    }

    // Real memory access: this is where a speculative load's address
    // reaches the front-side bus (the side channel).
    AuthSeq gate =
        gatesFetch(policy_)
            ? hier_.ctrl().authEngine().lastArrivedBy(cycle_, client_)
            : kNoAuthSeq;
    std::uint64_t raw = 0;
    mem::Txn access = hier_.readTimed(addr, bytes, cycle_ + 1, gate, raw,
                                      entry.seq, client_);
    entry.result = isa::adjustLoadValue(entry.inst.op, raw);
    entry.readyAt = access.ready;
    entry.dataReadyAt = access.dataReady;
    entry.busReqAt = access.busRequestAt;
    entry.busGrantAt = access.busGrantAt;
    entry.dataSeq = access.authSeq;
    entry.tainted = entry.tainted ||
                    hier_.ctrl().authEngine().requestFailed(access.authSeq);
    ++loadsIssued_;
    return true;
}

void
OooCore::stageComplete()
{
    for (unsigned pos = 0; pos < ruuCount_; ++pos) {
        RuuEntry &entry = entryAt(pos);
        if (!entry.issued || entry.completed || entry.readyAt > cycle_)
            continue;
        entry.completed = true;
        progress_ = true;

        if (!entry.isControl)
            continue;

        ++branches_;
        bpred_.update(entry.pc, entry.inst, entry.taken,
                      entry.taken ? entry.actualNext : 0);
        Addr predicted_next = entry.predTaken
                                  ? entry.predTarget
                                  : entry.pc + isa::kInstrBytes;
        if (predicted_next != entry.actualNext) {
            entry.mispredict = true;
            ++mispredicts_;
            std::uint64_t squashed_before = squashedInsts_.value();
            squashAfter(pos);
            ACP_TRACE(trace_, obs::TraceEventKind::kSquash, cycle_,
                      entry.pc, squashedInsts_.value() - squashed_before);
            fetchPc_ = entry.actualNext;
            fetchStallUntil_ = cycle_ + cfg_.mispredictPenalty;
            fetchStallCause_ = obs::StallCause::kSquash;
            break; // everything younger is gone
        }
    }
}

void
OooCore::stageCommit()
{
    for (unsigned done = 0; done < cfg_.commitWidth && ruuCount_ > 0;
         ++done) {
        RuuEntry &entry = entryAt(0);
        if (!entry.issued || !entry.completed || entry.readyAt > cycle_)
            break;

        if (gatesCommit(policy_)) {
            AuthSeq gate = std::max(entry.fetchSeq, entry.dataSeq);
            if (!verifiedOk(gate)) {
                ++authCommitStalls_;
                if (done == 0) {
                    commitBlock_ = CommitBlock::kAuthGate;
                    lastAuthBlockSeq_ = gate;
                }
                break;
            }
            if (gate != kNoAuthSeq && gate == lastAuthBlockSeq_) {
                // The tag the head was stalling on has verified.
                ACP_TRACE(trace_, obs::TraceEventKind::kGateRelease,
                          cycle_, gate, entry.pc);
                lastAuthBlockSeq_ = kNoAuthSeq;
            }
        }

        if (entry.isStore || entry.isOut) {
            if (storeBuffer_.size() >= cfg_.storeBufferSize) {
                ++sbFullStalls_;
                if (done == 0)
                    commitBlock_ = CommitBlock::kSbFull;
                break;
            }
            StoreBufEntry sb;
            sb.tag = entry.issueTag;
            sb.tainted = entry.tainted;
            if (entry.isOut) {
                sb.isOut = true;
                sb.value = entry.storeValue;
                sb.outPort = entry.outPort;
            } else {
                sb.addr = entry.memAddr;
                sb.bytes = entry.memBytes;
                sb.value = entry.storeValue;
                ++storesCommitted_;
            }
            storeBuffer_.push_back(sb);
        }

        if (entry.writesRd) {
            regs_[entry.inst.destReg()] = entry.result;
            regTainted_[entry.inst.destReg()] = entry.tainted;
        }

        if (shadow_) {
            StepInfo ref = shadow_->step();
            if (ref.pc != entry.pc)
                acp_panic("cosim PC mismatch: core 0x%llx shadow 0x%llx "
                          "(%s)",
                          (unsigned long long)entry.pc,
                          (unsigned long long)ref.pc,
                          isa::disassemble(entry.inst, entry.pc).c_str());
            if (entry.writesRd &&
                (!ref.wroteRd || ref.rdValue != entry.result))
                acp_panic("cosim value mismatch @0x%llx %s: core %llx "
                          "shadow %llx",
                          (unsigned long long)entry.pc,
                          isa::disassemble(entry.inst, entry.pc).c_str(),
                          (unsigned long long)entry.result,
                          (unsigned long long)ref.rdValue);
            if (entry.isStore &&
                (ref.memAddr != entry.memAddr ||
                 ref.storeValue != entry.storeValue))
                acp_panic("cosim store mismatch @0x%llx",
                          (unsigned long long)entry.pc);
        }

        if (traceOut_ && traceRemaining_ > 0) {
            --traceRemaining_;
            std::fprintf(traceOut_, "%10llu  0x%08llx  %-28s",
                         (unsigned long long)cycle_,
                         (unsigned long long)entry.pc,
                         isa::disassemble(entry.inst, entry.pc).c_str());
            if (entry.writesRd)
                std::fprintf(traceOut_, " x%u=0x%llx",
                             entry.inst.destReg(),
                             (unsigned long long)entry.result);
            if (entry.isStore)
                std::fprintf(traceOut_, " [0x%llx]<=0x%llx",
                             (unsigned long long)entry.memAddr,
                             (unsigned long long)entry.storeValue);
            if (entry.tainted)
                std::fprintf(traceOut_, " TAINTED");
            std::fputc('\n', traceOut_);
        }

        if (entry.tainted)
            ++taintedCommits_;
        ACP_TRACE(trace_, obs::TraceEventKind::kCommit, cycle_, entry.pc,
                  entry.seq);
        progress_ = true;
        ++committed_;
        ++commitsThisCycle_;
        lastCommitCycle_ = cycle_;

        if (entry.writesRd &&
            renameMap_[entry.inst.destReg()] == int(ruuIndex(0)))
            renameMap_[entry.inst.destReg()] = -1;
        if (entry.isLoad || entry.isStore)
            --lsqUsed_;
        bool halt = entry.isHalt;
        entry.valid = false;
        if (++ruuHead_ >= cfg_.ruuSize)
            ruuHead_ = 0;
        --ruuCount_;

        if (halt) {
            stopReason_ = StopReason::kHalted;
            break;
        }
    }
}

void
OooCore::stageStoreBufferDrain()
{
    if (storeBuffer_.empty())
        return;
    StoreBufEntry &sb = storeBuffer_.front();
    if (gatesWrite(policy_) && !verifiedOk(sb.tag)) {
        ++storeReleaseStalls_;
        drainBlocked_ = true;
        return;
    }
    progress_ = true;
    if (sb.tainted)
        ++taintedStoreDrains_;
    if (sb.isOut) {
        // Value leaves the chip through an output port: observable.
        hier_.ctrl().busTrace().record(cycle_, sb.value,
                                       mem::BusTxnKind::kIoOut, client_);
    } else {
        AuthSeq gate =
            gatesFetch(policy_)
                ? hier_.ctrl().authEngine().lastArrivedBy(cycle_, client_)
                : kNoAuthSeq;
        hier_.writeTimed(sb.addr, sb.bytes, sb.value, cycle_, gate,
                         /*origin=*/0, client_);
    }
    storeBuffer_.pop_front();
}

void
OooCore::stageIssue()
{
    unsigned slots = cfg_.issueWidth;
    unsigned int_alu = cfg_.intAluUnits;
    unsigned int_mul = cfg_.intMulUnits;
    unsigned mem_ports = cfg_.memPorts;
    unsigned fp_add = cfg_.fpAddUnits;
    unsigned fp_mul = cfg_.fpMulUnits;

    for (unsigned pos = 0; pos < ruuCount_ && slots > 0; ++pos) {
        RuuEntry &entry = entryAt(pos);
        if (entry.issued)
            continue;
        if (!resolveOperand(entry, 1) || !resolveOperand(entry, 2))
            continue;

        const isa::OpInfo &oi = entry.inst.info();
        switch (oi.fu) {
          case isa::FuClass::kIntAlu:
            if (int_alu == 0)
                continue;
            --int_alu;
            break;
          case isa::FuClass::kIntMul:
            if (int_mul == 0)
                continue;
            --int_mul;
            break;
          case isa::FuClass::kIntDiv:
            if (intDivFreeAt_ > cycle_)
                continue;
            intDivFreeAt_ = cycle_ + oi.latency;
            break;
          case isa::FuClass::kFpAdd:
            if (fp_add == 0)
                continue;
            --fp_add;
            break;
          case isa::FuClass::kFpMul:
            if (fp_mul == 0)
                continue;
            --fp_mul;
            break;
          case isa::FuClass::kFpDiv:
            if (fpDivFreeAt_ > cycle_)
                continue;
            fpDivFreeAt_ = cycle_ + oi.latency;
            break;
          case isa::FuClass::kMemPort:
            if (mem_ports == 0)
                continue;
            break;
          case isa::FuClass::kNone:
            break;
        }

        // Sample the LastRequest register at issue: the tag consulted
        // by the write gate and the fetch gate (Section 4.2.2/4.2.4).
        // Per-client: only requests this core posted move its tag.
        entry.issueTag =
            verifies(policy_)
                ? hier_.ctrl().authEngine().lastArrivedBy(cycle_, client_)
                : kNoAuthSeq;

        if (oi.fu == isa::FuClass::kMemPort) {
            if (!tryIssueMemOp(entry, pos))
                continue;
            --mem_ports;
        } else {
            isa::ExecResult res =
                isa::execute(entry.inst, entry.v1, entry.v2, entry.pc);
            entry.result = res.value;
            entry.readyAt = cycle_ + oi.latency;
            if (entry.isControl) {
                entry.taken = res.taken;
                entry.actualNext = res.taken
                                       ? res.target
                                       : entry.pc + isa::kInstrBytes;
            }
            if (entry.isOut) {
                entry.storeValue = res.storeValue;
                entry.outPort = res.outPort;
            }
        }

        entry.issued = true;
        progress_ = true;
        ACP_TRACE(trace_, obs::TraceEventKind::kIssue, cycle_, entry.pc,
                  entry.seq);
        ++issued_;
        --slots;
    }
}

void
OooCore::stageDispatch()
{
    for (unsigned done = 0; done < cfg_.decodeWidth && !fetchQueue_.empty();
         ++done) {
        if (ruuCount_ >= cfg_.ruuSize) {
            ++ruuFullStalls_;
            dispatchBlock_ = DispatchBlock::kRuuFull;
            break;
        }
        FetchedInst &fetched_inst = fetchQueue_.front();
        const isa::OpInfo &oi = fetched_inst.inst.info();
        bool is_mem = oi.isLoad || oi.isStore;
        if (is_mem && lsqUsed_ >= cfg_.lsqSize) {
            ++lsqFullStalls_;
            dispatchBlock_ = DispatchBlock::kLsqFull;
            break;
        }

        unsigned slot = ruuIndex(ruuCount_);
        RuuEntry &entry = ruu_[slot];
        entry = RuuEntry{};
        entry.valid = true;
        entry.seq = nextSeq_++;
        entry.pc = fetched_inst.pc;
        entry.inst = fetched_inst.inst;
        entry.fetchSeq = fetched_inst.fetchSeq;
        entry.tainted =
            hier_.ctrl().authEngine().requestFailed(entry.fetchSeq);
        entry.predTaken = fetched_inst.predTaken;
        entry.predTarget = fetched_inst.predTarget;
        entry.isLoad = oi.isLoad;
        entry.isStore = oi.isStore;
        entry.isControl = oi.isBranch || oi.isJump;
        entry.isOut = (entry.inst.op == isa::Op::kOut);
        entry.isHalt = (entry.inst.op == isa::Op::kHalt);
        entry.writesRd = (entry.inst.destReg() != 0);

        unsigned src1 = entry.inst.srcReg1();
        unsigned src2 = entry.inst.srcReg2();
        if (src1 != 0 && renameMap_[src1] >= 0) {
            entry.prod1 = renameMap_[src1];
            entry.prod1Seq = ruu_[entry.prod1].seq;
        } else {
            entry.v1 = regs_[src1];
            entry.v1Ready = true;
        }
        if (src2 != 0 && renameMap_[src2] >= 0) {
            entry.prod2 = renameMap_[src2];
            entry.prod2Seq = ruu_[entry.prod2].seq;
        } else {
            entry.v2 = regs_[src2];
            entry.v2Ready = true;
        }
        if (entry.writesRd)
            renameMap_[entry.inst.destReg()] = int(slot);

        ++ruuCount_;
        progress_ = true;
        if (is_mem)
            ++lsqUsed_;
        fetchQueue_.pop_front();
    }
}

void
OooCore::stageFetch()
{
    if (cycle_ < fetchStallUntil_)
        return;

    unsigned budget = cfg_.fetchWidth;
    const unsigned queue_cap = 2 * cfg_.fetchWidth;
    const Addr line_mask = cfg_.l1i.lineBytes - 1;

    while (budget > 0 && fetchQueue_.size() < queue_cap) {
        // Even a stalling probe mutates the hierarchy (caches, MSHRs,
        // bus, engine): every loop entry is progress.
        progress_ = true;
        AuthSeq gate =
            gatesFetch(policy_)
                ? hier_.ctrl().authEngine().lastArrivedBy(cycle_, client_)
                : kNoAuthSeq;
        std::uint32_t word = 0;
        mem::Txn access =
            hier_.fetchTimed(fetchPc_, cycle_, gate, word, client_);
        // L1I hits are pipelined: data arriving within the hit latency
        // feeds this cycle's fetch group; anything slower stalls.
        if (access.ready > cycle_ + cfg_.l1i.hitLatency) {
            fetchStallUntil_ = access.ready;
            // Attribute the upcoming frontend bubble: fetch-gate bus
            // delay, else plain miss latency; under authen-then-issue
            // the tail past data arrival is a verification wait
            // (classifyStall splits on fetchDataReadyAt_).
            fetchStallCause_ = access.gateDelayed
                                   ? obs::StallCause::kFetchGate
                                   : obs::StallCause::kMemFetch;
            fetchDataReadyAt_ = access.dataReady;
            break;
        }

        FetchedInst fetched_inst;
        ACP_TRACE(trace_, obs::TraceEventKind::kFetch, cycle_, fetchPc_);
        fetched_inst.pc = fetchPc_;
        fetched_inst.inst = isa::decode(word);
        fetched_inst.fetchSeq = access.authSeq;
        const isa::OpInfo &oi = fetched_inst.inst.info();
        if (oi.isBranch || oi.isJump) {
            Prediction pred = bpred_.predict(fetchPc_, fetched_inst.inst);
            fetched_inst.predTaken = pred.taken;
            fetched_inst.predTarget = pred.target;
        }
        fetchQueue_.push_back(fetched_inst);
        ++fetched_;
        --budget;

        if (fetched_inst.predTaken) {
            fetchPc_ = fetched_inst.predTarget;
            break; // taken control flow ends the fetch group
        }
        fetchPc_ += isa::kInstrBytes;
        if ((fetchPc_ & line_mask) == 0)
            break; // I-cache line boundary ends the fetch group
    }
}

obs::StallCause
OooCore::classifyStall()
{
    // The commit stage already knows why its head couldn't retire.
    if (commitBlock_ == CommitBlock::kAuthGate)
        return obs::StallCause::kAuthCommit;
    if (commitBlock_ == CommitBlock::kSbFull)
        return obs::StallCause::kSbFull;

    if (ruuCount_ == 0) {
        // Nothing in flight: the frontend owns the bubble.
        if (cycle_ < fetchStallUntil_) {
            if (fetchStallCause_ == obs::StallCause::kSquash ||
                fetchStallCause_ == obs::StallCause::kFetchGate)
                return fetchStallCause_;
            // Memory-driven fetch stall: once the line is physically
            // on-chip any remaining wait is the issue-gate's
            // verification tail, not memory latency.
            if (cycle_ >= fetchDataReadyAt_)
                return obs::StallCause::kAuthIssue;
            return obs::StallCause::kMemFetch;
        }
        return obs::StallCause::kFrontend;
    }

    RuuEntry &head = entryAt(0);
    if (!head.issued)
        return obs::StallCause::kIssueWait;
    if (head.isLoad && head.readyAt > cycle_) {
        // In-flight load at the head: charge verification only once
        // the data itself has arrived (authen-then-issue holds
        // usability until the verdict).
        if (cycle_ >= head.dataReadyAt)
            return obs::StallCause::kAuthIssue;
        // While the line transfer sits in the shared-bus arbiter's
        // queue, the wait is contention, not intrinsic memory latency.
        if (head.busGrantAt != kCycleNever &&
            head.busGrantAt > head.busReqAt && cycle_ >= head.busReqAt &&
            cycle_ < head.busGrantAt)
            return obs::StallCause::kBusWait;
        return obs::StallCause::kMemData;
    }
    return obs::StallCause::kExec;
}

void
OooCore::accountCycle()
{
    ++statCycles_;
    if (commitsThisCycle_ > 0) {
        ++commitActiveCycles_;
    } else {
        // Latch the cause: if this tick turns out idle, the skipped
        // window replays it (classification is constant between wake
        // boundaries — every branch cycle-compare is in the wake set).
        idleCause_ = classifyStall();
        ++stallCounters_[unsigned(idleCause_)];
    }
    ruuOccupancy_.sample(ruuCount_);
    sbOccupancy_.sample(storeBuffer_.size());
    if (recorder_)
        recorder_->tick(cycle_, committed_.value(), stallCycles());
    heartbeatSample(cycle_);
}

void
OooCore::heartbeatSample(Cycle cycle)
{
    if (!heartbeat_ || cycle < heartbeat_->nextSampleCycle())
        return;
    heartbeat_->sample(cycle, committed_.value(), stallCycles(),
                       hier_.txnsRetired());
}

obs::StallArray
OooCore::stallCycles() const
{
    obs::StallArray out{};
    for (unsigned i = 0; i < obs::kNumStallCauses; ++i)
        out[i] = stallCounters_[i].value();
    return out;
}

void
OooCore::flushIntervals()
{
    if (recorder_)
        recorder_->finish(cycle_, committed_.value(), stallCycles());
}

bool
OooCore::tick()
{
    if (stopReason_ != StopReason::kRunning)
        return false;
    if (checkEngineFailure())
        return false;

    progress_ = false;
    drainBlocked_ = false;
    dispatchBlock_ = DispatchBlock::kNone;
    stageComplete();
    commitsThisCycle_ = 0;
    commitBlock_ = CommitBlock::kNone;
    stageCommit();
    // Charge the cycle right after commit, before the younger stages
    // mutate the RUU: attribution sees the machine state the commit
    // stage actually faced.
    accountCycle();
    if (stopReason_ != StopReason::kRunning) {
        ++cycle_;
        return false;
    }
    stageStoreBufferDrain();
    stageIssue();
    stageDispatch();
    stageFetch();
    ++cycle_;

    if (cycle_ - lastCommitCycle_ > kProgressPanicCycles) {
        const RuuEntry *head = ruuCount_ ? &entryAt(0) : nullptr;
        acp_panic("%s: no commit progress for 1M cycles "
                  "(pc 0x%llx cycle %llu ruu %u commit-block %u "
                  "dispatch-block %u head{valid %d seq %llu pc 0x%llx "
                  "issued %d done %d readyAt %llu load %d store %d "
                  "v1 %d v2 %d prod1 %d prod2 %d})",
                  componentName(), (unsigned long long)fetchPc_,
                  (unsigned long long)cycle_, ruuCount_,
                  unsigned(commitBlock_), unsigned(dispatchBlock_),
                  head ? head->valid : 0,
                  head ? (unsigned long long)head->seq : 0ull,
                  head ? (unsigned long long)head->pc : 0ull,
                  head ? head->issued : 0, head ? head->completed : 0,
                  head ? (unsigned long long)head->readyAt : 0ull,
                  head ? head->isLoad : 0, head ? head->isStore : 0,
                  head ? head->v1Ready : 0, head ? head->v2Ready : 0,
                  head ? head->prod1 : -2, head ? head->prod2 : -2);
    }
    return true;
}

void
OooCore::beginRun(std::uint64_t max_insts, std::uint64_t max_cycles)
{
    runInstLimit_ = instsCommitted() + max_insts;
    runCycleLimit_ = cycle_ + max_cycles;
    runLimitHit_ = StopReason::kRunning;
}

StopReason
OooCore::runReason() const
{
    // Limits end the window without setting stopReason_ — the core
    // stays kRunning and a later window can continue.
    return runLimitHit_ != StopReason::kRunning ? runLimitHit_
                                                : stopReason_;
}

Cycle
OooCore::nextWakeCycle() const
{
    // Only boundaries at or after cycle_ count: a compare whose cycle
    // has already passed is settled and cannot flip again while the
    // machine is frozen, so skipping past it is exactly what the
    // polled loop does. A boundary at exactly cycle_ yields wake ==
    // cycle_, i.e. "the very next tick is not idle — do not skip".
    Cycle wake = kCycleNever;
    auto consider = [&wake, this](Cycle c) {
        if (c >= cycle_ && c < wake)
            wake = c;
    };

    // The no-progress panic bounds every idle window: the tick at
    // lastCommitCycle_ + 1M must really run so the panic fires on the
    // same cycle as under the polled loop.
    consider(lastCommitCycle_ + kProgressPanicCycles);

    const secmem::AuthEngine &eng =
        const_cast<secmem::MemHierarchy &>(hier_).ctrl().authEngine();

    // Pending completions (also the head-commit / operand / issue
    // unblock events).
    for (unsigned pos = 0; pos < ruuCount_; ++pos) {
        const RuuEntry &entry = ruu_[ruuIndex(pos)];
        if (entry.issued && !entry.completed)
            consider(entry.readyAt);
    }

    if (ruuCount_ > 0) {
        const RuuEntry &head = ruu_[ruuIndex(0)];
        if (head.issued && head.completed && gatesCommit(policy_)) {
            // Commit gate: the verdict lands at the engine's done
            // cycle (a failed tag never opens the gate, but then the
            // engine-failure wake below ends the run).
            AuthSeq gate = std::max(head.fetchSeq, head.dataSeq);
            if (gate != kNoAuthSeq)
                consider(eng.doneCycle(gate));
        }
        if (head.issued && !head.completed && head.isLoad) {
            // Stall-attribution boundaries of an in-flight head load
            // (classifyStall branches on these compares).
            if (head.dataReadyAt != kCycleNever)
                consider(head.dataReadyAt);
            if (head.busReqAt != kCycleNever)
                consider(head.busReqAt);
            if (head.busGrantAt != kCycleNever)
                consider(head.busGrantAt);
        }
    }

    // Store-release gate on the buffer head.
    if (!storeBuffer_.empty() && gatesWrite(policy_))
        consider(eng.doneCycle(storeBuffer_.front().tag));

    // Frontend restart + its attribution boundary (kMemFetch ->
    // kAuthIssue split at data arrival). Stale values from a finished
    // stall are in the past, which consider() filters.
    consider(fetchStallUntil_);
    consider(fetchDataReadyAt_);

    // Unpipelined dividers (free-at == cycle_ means issuable now).
    consider(intDivFreeAt_);
    consider(fpDivFreeAt_);

    // A posted verification failure raises the security exception the
    // moment its verdict is due (only this core's own failures).
    if (verifies(policy_) && eng.anyFailure(client_))
        consider(eng.firstFailureCycle(client_));

    // The panic bound always qualifies (cycle_ <= lastCommitCycle_ +
    // 1M while running), so wake is never kCycleNever; the guard is
    // belt-and-braces.
    return wake == kCycleNever ? cycle_ : wake;
}

void
OooCore::accountIdleCycles(std::uint64_t n)
{
    // Replays, for each of the n skipped cycles, exactly the counter
    // and recorder side effects the polled loop's idle tick performs.
    // Machine state is frozen across the window (no completion, no
    // commit, no drain, no issue, no dispatch, no hierarchy access),
    // so each cycle charges the same latched causes.
    bool auth_commit = commitBlock_ == CommitBlock::kAuthGate;
    bool sb_full = commitBlock_ == CommitBlock::kSbFull;
    bool ruu_full = dispatchBlock_ == DispatchBlock::kRuuFull;
    bool lsq_full = dispatchBlock_ == DispatchBlock::kLsqFull;

    if (recorder_) {
        // The recorder wants its cumulative feed once per cycle.
        for (std::uint64_t i = 0; i < n; ++i) {
            if (auth_commit)
                ++authCommitStalls_;
            else if (sb_full)
                ++sbFullStalls_;
            ++statCycles_;
            ++stallCounters_[unsigned(idleCause_)];
            ruuOccupancy_.sample(ruuCount_);
            sbOccupancy_.sample(storeBuffer_.size());
            recorder_->tick(cycle_ + i, committed_.value(), stallCycles());
            if (drainBlocked_)
                ++storeReleaseStalls_;
            if (ruu_full)
                ++ruuFullStalls_;
            else if (lsq_full)
                ++lsqFullStalls_;
        }
        heartbeatSample(cycle_ + n);
        return;
    }

    if (auth_commit)
        authCommitStalls_ += n;
    else if (sb_full)
        sbFullStalls_ += n;
    statCycles_ += n;
    stallCounters_[unsigned(idleCause_)] += n;
    ruuOccupancy_.sample(ruuCount_, n);
    sbOccupancy_.sample(storeBuffer_.size(), n);
    if (drainBlocked_)
        storeReleaseStalls_ += n;
    if (ruu_full)
        ruuFullStalls_ += n;
    else if (lsq_full)
        lsqFullStalls_ += n;
    heartbeatSample(cycle_ + n);
}

Cycle
OooCore::onWake(Cycle now)
{
    (void)now; // the core's clock is cycle_; now == cycle_ by contract
    if (stopReason_ != StopReason::kRunning)
        return kCycleNever;
    if (instsCommitted() >= runInstLimit_) {
        runLimitHit_ = StopReason::kInstLimit;
        return kCycleNever;
    }
    if (cycle_ >= runCycleLimit_) {
        runLimitHit_ = StopReason::kCycleLimit;
        return kCycleNever;
    }

    tick();
    if (stopReason_ != StopReason::kRunning)
        return kCycleNever;
    if (progress_)
        return cycle_; // active: simulate the very next cycle

    // Idle: nothing can change before the next wake boundary. Account
    // the skipped window and jump.
    Cycle wake = nextWakeCycle();
    if (wake > runCycleLimit_)
        wake = runCycleLimit_; // accounting stops at the limit
    if (wake > cycle_) {
        accountIdleCycles(wake - cycle_);
        cycle_ = wake;
    }
    return cycle_;
}

void
OooCore::resetStats()
{
    stats_.resetAll();
    // Re-anchor the interval recorder: cumulative totals just went
    // back to zero, so deltas must restart from here.
    if (recorder_)
        recorder_->rebase(cycle_, committed_.value(), stallCycles());
}

void
OooCore::traceCommits(std::FILE *out, std::uint64_t insts)
{
    traceOut_ = out;
    traceRemaining_ = insts;
}

} // namespace acp::cpu
