#include "cpu/func_executor.hh"

#include "common/logging.hh"
#include "isa/opcodes.hh"

namespace acp::cpu
{

FuncExecutor::FuncExecutor(MemPort port, Addr entry)
    : port_(std::move(port)), pc_(entry)
{
}

StepInfo
FuncExecutor::step()
{
    StepInfo info;
    if (halted_) {
        info.halted = true;
        return info;
    }

    info.pc = pc_;
    std::uint32_t word = port_.fetch(pc_);
    info.inst = isa::decode(word);

    std::uint64_t v1 = regs_[info.inst.srcReg1()];
    std::uint64_t v2 = regs_[info.inst.srcReg2()];
    isa::ExecResult res = isa::execute(info.inst, v1, v2, pc_);

    Addr next_pc = pc_ + isa::kInstrBytes;

    if (info.inst.isLoad()) {
        unsigned bytes = isa::memAccessBytes(info.inst.op);
        std::uint64_t raw = port_.read(res.memAddr, bytes);
        res.value = isa::adjustLoadValue(info.inst.op, raw);
        info.memAddr = res.memAddr;
        info.memBytes = bytes;
    } else if (info.inst.isStore()) {
        unsigned bytes = isa::memAccessBytes(info.inst.op);
        port_.write(res.memAddr, bytes, res.storeValue);
        info.isStore = true;
        info.memAddr = res.memAddr;
        info.storeValue = res.storeValue;
        info.memBytes = bytes;
    }

    if (res.taken)
        next_pc = res.target;

    unsigned dest = info.inst.destReg();
    if (dest != 0) {
        regs_[dest] = res.value;
        info.wroteRd = true;
        info.rdValue = res.value;
    }

    if (res.isOut) {
        info.isOut = true;
        info.outValue = res.storeValue;
        info.outPort = res.outPort;
    }

    if (res.halted) {
        halted_ = true;
        info.halted = true;
    }

    pc_ = next_pc;
    info.nextPc = next_pc;
    ++insts_;
    return info;
}

std::uint64_t
FuncExecutor::run(std::uint64_t max_insts)
{
    std::uint64_t count = 0;
    while (count < max_insts && !halted_) {
        step();
        ++count;
    }
    return count;
}

} // namespace acp::cpu
