/**
 * @file
 * Sparse flat plaintext memory used by the standalone functional
 * executor (fast-forward reference and commit-time co-simulation
 * shadow). Independent of the cache hierarchy so the shadow never
 * perturbs timing state.
 */

#ifndef ACP_CPU_FLAT_MEM_HH
#define ACP_CPU_FLAT_MEM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace acp::cpu
{

/** Page-granular sparse memory. */
class FlatMem
{
  public:
    explicit FlatMem(std::uint64_t size_bytes) : sizeMask_(size_bytes - 1) {}

    std::uint64_t
    read(Addr addr, unsigned bytes)
    {
        std::uint64_t value = 0;
        for (unsigned i = 0; i < bytes; ++i)
            value |= std::uint64_t(byteAt((addr + i) & sizeMask_))
                     << (8 * i);
        return value;
    }

    void
    write(Addr addr, unsigned bytes, std::uint64_t value)
    {
        for (unsigned i = 0; i < bytes; ++i)
            byteAt((addr + i) & sizeMask_) = std::uint8_t(value >> (8 * i));
    }

    std::uint32_t
    fetch(Addr pc)
    {
        return std::uint32_t(read(pc, 4));
    }

    /** Copy a program's code and data segments in. */
    void
    loadProgram(const isa::Program &prog)
    {
        for (std::size_t i = 0; i < prog.code.size(); ++i)
            write(prog.codeBase + 4 * i, 4, prog.code[i]);
        for (const isa::DataSegment &seg : prog.data)
            for (std::size_t i = 0; i < seg.bytes.size(); ++i)
                write(seg.base + i, 1, seg.bytes[i]);
    }

  private:
    static constexpr unsigned kPageShift = 12;
    static constexpr std::uint64_t kPageBytes = 1ULL << kPageShift;

    std::uint8_t &
    byteAt(Addr addr)
    {
        Addr page = addr >> kPageShift;
        auto it = pages_.find(page);
        if (it == pages_.end())
            it = pages_.emplace(page,
                                std::vector<std::uint8_t>(kPageBytes, 0))
                     .first;
        return it->second[addr & (kPageBytes - 1)];
    }

    std::uint64_t sizeMask_;
    std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
};

} // namespace acp::cpu

#endif // ACP_CPU_FLAT_MEM_HH
