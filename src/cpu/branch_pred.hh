/**
 * @file
 * Branch prediction: bimodal 2-bit counter table, direct-mapped BTB,
 * and a return address stack — the SimpleScalar default configuration
 * class used by the paper's processor model.
 */

#ifndef ACP_CPU_BRANCH_PRED_HH
#define ACP_CPU_BRANCH_PRED_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instr.hh"
#include "sim/config.hh"

namespace acp::cpu
{

/** Fetch-time prediction. */
struct Prediction
{
    bool taken = false;
    Addr target = 0;
};

/** The predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const sim::SimConfig &cfg);

    /**
     * Predict a decoded control instruction at @p pc.
     * Direct jumps are always taken with the decoded target; JALR uses
     * RAS (returns) or BTB (indirect); conditional branches use the
     * bimodal table and their decoded target.
     */
    Prediction predict(Addr pc, const isa::DecodedInst &inst);

    /** Train with the resolved outcome. */
    void update(Addr pc, const isa::DecodedInst &inst, bool taken,
                Addr target);

    /** Squash-side RAS repair is not modeled; RAS corruption after a
     *  misprediction simply costs accuracy, as in SimpleScalar. */
    StatGroup &stats() { return stats_; }
    std::uint64_t lookups() const { return lookups_.value(); }

  private:
    unsigned bimodalIndex(Addr pc) const;
    unsigned btbIndex(Addr pc) const;

    std::vector<std::uint8_t> bimodal_; // 2-bit saturating counters
    struct BtbEntry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
    };
    std::vector<BtbEntry> btb_;
    std::vector<Addr> ras_;
    std::size_t rasTop_ = 0; // count of valid entries

    StatGroup stats_;
    StatCounter lookups_;
    StatCounter rasPushes_;
    StatCounter rasPops_;
};

} // namespace acp::cpu

#endif // ACP_CPU_BRANCH_PRED_HH
