/**
 * @file
 * Simple set-associative TLB timing model. The simulated machine uses
 * an identity virtual-to-physical mapping (a flat embedded-style
 * address space, which Section 3.3 notes makes fetch-address exploits
 * directly applicable); the TLB contributes timing and records
 * translation faults for out-of-range addresses.
 */

#ifndef ACP_CACHE_TLB_HH
#define ACP_CACHE_TLB_HH

#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace acp::cache
{

/** Set-associative TLB of page numbers, LRU replaced. */
class Tlb
{
  public:
    Tlb(std::string name, unsigned entries, unsigned assoc,
        unsigned page_bytes, unsigned miss_penalty);

    /**
     * Translate (identity) and return the added latency: 0 on hit,
     * missPenalty on miss (page-walk charge). Inserts on miss.
     */
    unsigned access(Addr vaddr);

    StatGroup &stats() { return stats_; }
    std::uint64_t hitCount() const { return hits_.value(); }
    std::uint64_t missCount() const { return misses_.value(); }

    void flushAll();

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t vpn = 0;
        std::uint64_t lru = 0;
    };

    unsigned assoc_;
    unsigned pageShift_;
    unsigned missPenalty_;
    std::uint64_t numSets_;
    std::uint64_t lruClock_ = 0;
    std::vector<Entry> entries_;

    StatGroup stats_;
    StatCounter hits_;
    StatCounter misses_;
};

} // namespace acp::cache

#endif // ACP_CACHE_TLB_HH
