/**
 * @file
 * Generic set-associative, write-back, write-allocate cache with true
 * LRU replacement and per-line data storage. Used for the L1I/L1D/L2
 * caches and (tag-mostly) for the counter cache, hash-tree node cache
 * and remap cache.
 *
 * On-chip caches are inside the secure processor's trust boundary, so
 * lines hold *plaintext*; encryption/decryption happens at the L2/
 * external-memory boundary in the secure memory controller.
 */

#ifndef ACP_CACHE_CACHE_HH
#define ACP_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/config.hh"

namespace acp::cache
{

/** One cache line: tags, payload and secure-fill metadata. */
struct CacheLine
{
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    /** LRU stamp (global monotonic counter; larger = more recent). */
    std::uint64_t lru = 0;
    /** Cycle at which fill data becomes usable by consumers. */
    Cycle usableAt = 0;
    /** Cycle at which the decrypted fill data was physically present
     *  on-chip — under authen-then-issue this can be earlier than
     *  usableAt (verification still pending); observability uses the
     *  gap to attribute stall cycles to authentication rather than
     *  memory latency. */
    Cycle dataReadyAt = 0;
    /** Pending authentication request covering the fill (0 = none). */
    AuthSeq authSeq = 0;
    /** Line payload (plaintext). Sized lazily to the line size. */
    std::vector<std::uint8_t> data;
};

/** Eviction notice returned by allocate(). */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr addr = 0;
    std::vector<std::uint8_t> data;
};

/** Set-associative cache. */
class Cache
{
  public:
    Cache(std::string name, const sim::CacheConfig &cfg);

    unsigned lineBytes() const { return cfg_.lineBytes; }
    unsigned hitLatency() const { return cfg_.hitLatency; }
    std::uint64_t numSets() const { return numSets_; }
    unsigned assoc() const { return cfg_.assoc; }

    /** Line-align an address. */
    Addr lineAlign(Addr a) const { return a & ~Addr(cfg_.lineBytes - 1); }

    /**
     * Probe for @p addr. Returns the line or nullptr.
     * @param touch update LRU and hit/miss statistics
     */
    CacheLine *lookup(Addr addr, bool touch = true);
    const CacheLine *peek(Addr addr) const;

    /**
     * Allocate a line for @p addr, evicting the LRU way if needed.
     * The returned line is valid with fresh tag and zeroed metadata;
     * caller fills data/usableAt/authSeq. @p evicted receives the
     * victim (with its data) so the caller can write it back.
     */
    CacheLine *allocate(Addr addr, Eviction *evicted);

    /** Invalidate the line holding @p addr if present; returns its
     *  previous contents through @p evicted (for dirty merge). */
    bool invalidate(Addr addr, Eviction *evicted);

    /** Drop all lines (no writeback) and reset LRU clock. */
    void flushAll();

    /** Iterate every valid line with its address (flush scans). */
    template <typename Fn>
    void
    forEachLineAddr(Fn &&fn)
    {
        for (std::uint64_t set = 0; set < numSets_; ++set) {
            for (unsigned way = 0; way < cfg_.assoc; ++way) {
                CacheLine &line = lines_[set * cfg_.assoc + way];
                if (line.valid)
                    fn(addrOf(line, set), line);
            }
        }
    }

    StatGroup &stats() { return stats_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    std::uint64_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Addr addrOf(const CacheLine &line, std::uint64_t set) const;

    sim::CacheConfig cfg_;
    std::uint64_t numSets_;
    unsigned lineShift_;
    std::uint64_t lruClock_ = 0;
    std::vector<CacheLine> lines_; // numSets_ * assoc, row-major by set

    StatGroup stats_;
    StatCounter hits_;
    StatCounter misses_;
    StatCounter evictions_;
    StatCounter writebacks_;
};

} // namespace acp::cache

#endif // ACP_CACHE_CACHE_HH
