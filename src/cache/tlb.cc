#include "cache/tlb.hh"

#include "common/logging.hh"

namespace acp::cache
{

Tlb::Tlb(std::string name, unsigned entries, unsigned assoc,
         unsigned page_bytes, unsigned miss_penalty)
    : assoc_(assoc), pageShift_(floorLog2(page_bytes)),
      missPenalty_(miss_penalty), stats_(std::move(name))
{
    if (entries % assoc != 0)
        acp_fatal("TLB entries %u not divisible by assoc %u", entries,
                  assoc);
    numSets_ = entries / assoc;
    if (!isPowerOfTwo(numSets_))
        acp_fatal("TLB set count must be a power of two");
    entries_.resize(entries);
    stats_.addCounter("hits", &hits_);
    stats_.addCounter("misses", &misses_);
}

unsigned
Tlb::access(Addr vaddr)
{
    std::uint64_t vpn = vaddr >> pageShift_;
    std::uint64_t set = vpn & (numSets_ - 1);
    Entry *base = &entries_[set * assoc_];

    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].vpn == vpn) {
            ++hits_;
            base[way].lru = ++lruClock_;
            return 0;
        }
    }

    ++misses_;
    Entry *victim = &base[0];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (!base[way].valid) {
            victim = &base[way];
            break;
        }
        if (base[way].lru < victim->lru)
            victim = &base[way];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lru = ++lruClock_;
    return missPenalty_;
}

void
Tlb::flushAll()
{
    for (Entry &entry : entries_)
        entry.valid = false;
    lruClock_ = 0;
}

} // namespace acp::cache
