#include "cache/cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace acp::cache
{

Cache::Cache(std::string name, const sim::CacheConfig &cfg)
    : cfg_(cfg), stats_(std::move(name))
{
    if (!isPowerOfTwo(cfg.lineBytes))
        acp_fatal("%s: line size %u not a power of two",
                  stats_.name().c_str(), cfg.lineBytes);
    if (cfg.sizeBytes % (std::uint64_t(cfg.lineBytes) * cfg.assoc) != 0)
        acp_fatal("%s: size %llu not divisible by assoc*line",
                  stats_.name().c_str(),
                  (unsigned long long)cfg.sizeBytes);

    numSets_ = cfg.sizeBytes / (std::uint64_t(cfg.lineBytes) * cfg.assoc);
    if (!isPowerOfTwo(numSets_))
        acp_fatal("%s: set count %llu not a power of two",
                  stats_.name().c_str(), (unsigned long long)numSets_);
    lineShift_ = floorLog2(cfg.lineBytes);
    lines_.resize(numSets_ * cfg.assoc);

    stats_.addCounter("hits", &hits_);
    stats_.addCounter("misses", &misses_);
    stats_.addCounter("evictions", &evictions_);
    stats_.addCounter("writebacks", &writebacks_);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr >> lineShift_) / numSets_;
}

Addr
Cache::addrOf(const CacheLine &line, std::uint64_t set) const
{
    return ((line.tag * numSets_ + set) << lineShift_);
}

CacheLine *
Cache::lookup(Addr addr, bool touch)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    CacheLine *base = &lines_[set * cfg_.assoc];
    for (unsigned way = 0; way < cfg_.assoc; ++way) {
        CacheLine &line = base[way];
        if (line.valid && line.tag == tag) {
            if (touch) {
                ++hits_;
                line.lru = ++lruClock_;
            }
            return &line;
        }
    }
    if (touch)
        ++misses_;
    return nullptr;
}

const CacheLine *
Cache::peek(Addr addr) const
{
    return const_cast<Cache *>(this)->lookup(addr, false);
}

CacheLine *
Cache::allocate(Addr addr, Eviction *evicted)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    CacheLine *base = &lines_[set * cfg_.assoc];

    // Prefer an invalid way; otherwise evict true-LRU.
    CacheLine *victim = &base[0];
    for (unsigned way = 0; way < cfg_.assoc; ++way) {
        CacheLine &line = base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }

    if (evicted) {
        evicted->valid = victim->valid;
        evicted->dirty = victim->valid && victim->dirty;
        if (victim->valid) {
            evicted->addr = addrOf(*victim, set);
            evicted->data = std::move(victim->data);
            ++evictions_;
            if (victim->dirty)
                ++writebacks_;
        }
    }

    victim->valid = true;
    victim->dirty = false;
    victim->tag = tag;
    victim->lru = ++lruClock_;
    victim->usableAt = 0;
    victim->dataReadyAt = 0;
    victim->authSeq = kNoAuthSeq;
    victim->data.assign(cfg_.lineBytes, 0);
    return victim;
}

bool
Cache::invalidate(Addr addr, Eviction *evicted)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    CacheLine *base = &lines_[set * cfg_.assoc];
    for (unsigned way = 0; way < cfg_.assoc; ++way) {
        CacheLine &line = base[way];
        if (line.valid && line.tag == tag) {
            if (evicted) {
                evicted->valid = true;
                evicted->dirty = line.dirty;
                evicted->addr = addrOf(line, set);
                evicted->data = std::move(line.data);
            }
            line.valid = false;
            line.dirty = false;
            line.data.clear();
            return true;
        }
    }
    if (evicted)
        evicted->valid = false;
    return false;
}

void
Cache::flushAll()
{
    for (CacheLine &line : lines_) {
        line.valid = false;
        line.dirty = false;
        line.data.clear();
    }
    lruClock_ = 0;
}

} // namespace acp::cache
