/**
 * @file
 * Instruction word encoding and decoding.
 *
 * Word layout (bit 31 is MSB):
 *   R-type:  op[31:26] rd[25:21] rs1[20:16] rs2[15:11] zero[10:0]
 *   I/S/B:   op[31:26] rd[25:21] rs1[20:16] imm16[15:0] (signed)
 *   J-type:  op[31:26] rd[25:21] imm21[20:0] (signed)
 *
 * For stores the "rd" slot names the data source register; for
 * branches the "rd" slot names the first comparison source. Branch and
 * jump immediates are in units of instruction words, PC-relative.
 */

#ifndef ACP_ISA_INSTR_HH
#define ACP_ISA_INSTR_HH

#include <cstdint>
#include <string>

#include "common/bitops.hh"
#include "common/types.hh"
#include "isa/opcodes.hh"

namespace acp::isa
{

/** Size of one instruction word in bytes. */
constexpr unsigned kInstrBytes = 4;

/** A fully decoded instruction. */
struct DecodedInst
{
    Op op = Op::kNop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    /** Sign-extended immediate (raw; branch/jump offsets in words). */
    std::int64_t imm = 0;

    const OpInfo &info() const { return opInfo(op); }

    /** Destination register actually written (0 means none: x0 sink). */
    std::uint8_t
    destReg() const
    {
        return info().writesRd ? rd : 0;
    }

    /** First source register read, or 0 (x0) if unused. */
    std::uint8_t
    srcReg1() const
    {
        const OpInfo &oi = info();
        if (oi.format == Format::kBType)
            return rd; // branches compare rd-slot and rs1-slot regs
        if (oi.format == Format::kSType)
            return rs1; // store base address
        return oi.readsRs1 ? rs1 : 0;
    }

    /** Second source register read, or 0 if unused. */
    std::uint8_t
    srcReg2() const
    {
        const OpInfo &oi = info();
        if (oi.format == Format::kBType)
            return rs1;
        if (oi.format == Format::kSType)
            return rd; // store data source lives in the rd slot
        return oi.readsRs2 ? rs2 : 0;
    }

    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isBranch() const { return info().isBranch; }
    bool isJump() const { return info().isJump; }
    bool isControl() const { return isBranch() || isJump(); }
    bool isHalt() const { return op == Op::kHalt; }

    /** Branch/jump target for PC-relative forms. */
    Addr
    relTarget(Addr pc) const
    {
        return Addr(std::int64_t(pc) + imm * std::int64_t(kInstrBytes));
    }
};

/** Encode a decoded instruction back into a 32-bit word. */
std::uint32_t encode(const DecodedInst &inst);

/** Decode a 32-bit word. Unknown opcodes decode as kHalt (fault-stop). */
DecodedInst decode(std::uint32_t word);

/** Human-readable disassembly, e.g. "addi x5, x5, -1". */
std::string disassemble(const DecodedInst &inst, Addr pc = 0);

} // namespace acp::isa

#endif // ACP_ISA_INSTR_HH
