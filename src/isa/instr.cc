#include "isa/instr.hh"

#include <cstdio>

#include "common/logging.hh"

namespace acp::isa
{

std::uint32_t
encode(const DecodedInst &inst)
{
    std::uint32_t op_bits = std::uint32_t(inst.op) << 26;
    std::uint32_t rd_bits = (std::uint32_t(inst.rd) & 0x1f) << 21;
    const OpInfo &oi = inst.info();

    switch (oi.format) {
      case Format::kRType:
        return op_bits | rd_bits | ((std::uint32_t(inst.rs1) & 0x1f) << 16) |
               ((std::uint32_t(inst.rs2) & 0x1f) << 11);
      case Format::kIType:
      case Format::kSType:
      case Format::kBType:
        if (inst.imm < -32768 || inst.imm > 32767)
            acp_panic("imm16 overflow: %lld for %s", (long long)inst.imm,
                      oi.mnemonic);
        return op_bits | rd_bits | ((std::uint32_t(inst.rs1) & 0x1f) << 16) |
               (std::uint32_t(inst.imm) & 0xffff);
      case Format::kJType:
        if (inst.imm < -(1 << 20) || inst.imm >= (1 << 20))
            acp_panic("imm21 overflow: %lld", (long long)inst.imm);
        return op_bits | rd_bits | (std::uint32_t(inst.imm) & 0x1fffff);
      case Format::kNType:
        return op_bits;
    }
    acp_panic("encode: bad format");
}

DecodedInst
decode(std::uint32_t word)
{
    DecodedInst inst;
    unsigned op_raw = (word >> 26) & 0x3f;
    if (op_raw >= unsigned(Op::kNumOps)) {
        // Tampered/garbage encodings decode to HALT so the pipeline
        // stops deterministically instead of executing junk.
        inst.op = Op::kHalt;
        return inst;
    }
    inst.op = Op(op_raw);
    inst.rd = std::uint8_t((word >> 21) & 0x1f);

    const OpInfo &oi = inst.info();
    switch (oi.format) {
      case Format::kRType:
        inst.rs1 = std::uint8_t((word >> 16) & 0x1f);
        inst.rs2 = std::uint8_t((word >> 11) & 0x1f);
        break;
      case Format::kIType:
      case Format::kSType:
      case Format::kBType:
        inst.rs1 = std::uint8_t((word >> 16) & 0x1f);
        inst.imm = sext(word & 0xffff, 16);
        break;
      case Format::kJType:
        inst.imm = sext(word & 0x1fffff, 21);
        break;
      case Format::kNType:
        inst.rd = 0; // rd slot is a don't-care for operand-less ops
        break;
    }
    return inst;
}

std::string
disassemble(const DecodedInst &inst, Addr pc)
{
    const OpInfo &oi = inst.info();
    char buf[96];
    switch (oi.format) {
      case Format::kRType:
        std::snprintf(buf, sizeof(buf), "%-6s x%u, x%u, x%u", oi.mnemonic,
                      inst.rd, inst.rs1, inst.rs2);
        break;
      case Format::kIType:
        if (oi.isLoad) {
            std::snprintf(buf, sizeof(buf), "%-6s x%u, %lld(x%u)",
                          oi.mnemonic, inst.rd, (long long)inst.imm,
                          inst.rs1);
        } else {
            std::snprintf(buf, sizeof(buf), "%-6s x%u, x%u, %lld",
                          oi.mnemonic, inst.rd, inst.rs1,
                          (long long)inst.imm);
        }
        break;
      case Format::kSType:
        std::snprintf(buf, sizeof(buf), "%-6s x%u, %lld(x%u)", oi.mnemonic,
                      inst.rd, (long long)inst.imm, inst.rs1);
        break;
      case Format::kBType:
        std::snprintf(buf, sizeof(buf), "%-6s x%u, x%u, 0x%llx",
                      oi.mnemonic, inst.rd, inst.rs1,
                      (unsigned long long)inst.relTarget(pc));
        break;
      case Format::kJType:
        std::snprintf(buf, sizeof(buf), "%-6s x%u, 0x%llx", oi.mnemonic,
                      inst.rd, (unsigned long long)inst.relTarget(pc));
        break;
      case Format::kNType:
        std::snprintf(buf, sizeof(buf), "%s", oi.mnemonic);
        break;
      default:
        std::snprintf(buf, sizeof(buf), "<bad>");
        break;
    }
    return buf;
}

} // namespace acp::isa
