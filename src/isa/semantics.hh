/**
 * @file
 * Architectural execution semantics of the mini-ISA, shared by the
 * functional executor and the out-of-order core (so the two can be
 * co-simulated against each other as a correctness check).
 *
 * Immediate conventions: arithmetic immediates (addi/slti) and memory
 * offsets are sign-extended; logical immediates (andi/ori/xori) are
 * zero-extended; lui places the zero-extended imm16 into bits [31:16].
 */

#ifndef ACP_ISA_SEMANTICS_HH
#define ACP_ISA_SEMANTICS_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/instr.hh"

namespace acp::isa
{

/** Outcome of executing one instruction (memory access not performed). */
struct ExecResult
{
    /** Value to write to destReg() (link address for jumps). */
    std::uint64_t value = 0;
    /** For control transfers: whether the branch is taken. */
    bool taken = false;
    /** Target address when taken (also set for jumps). */
    Addr target = 0;
    /** Effective address for loads/stores. */
    Addr memAddr = 0;
    /** Data to be stored for store ops. */
    std::uint64_t storeValue = 0;
    /** kHalt executed. */
    bool halted = false;
    /** kOut executed: value sent to the I/O port given by imm. */
    bool isOut = false;
    std::uint64_t outPort = 0;
};

/**
 * Execute @p inst architecturally.
 * @param v1 value of inst.srcReg1()
 * @param v2 value of inst.srcReg2()
 * @param pc address of the instruction
 *
 * Loads produce memAddr; the caller performs the access and writes the
 * (sign-extended per access size) result to destReg(). Stores produce
 * memAddr/storeValue for the caller to apply.
 */
ExecResult execute(const DecodedInst &inst, std::uint64_t v1,
                   std::uint64_t v2, Addr pc);

/** Sign/zero-adjust a raw little-endian loaded value per opcode. */
std::uint64_t adjustLoadValue(Op op, std::uint64_t raw);

} // namespace acp::isa

#endif // ACP_ISA_SEMANTICS_HH
