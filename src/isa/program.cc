#include "isa/program.hh"

#include <cstring>

#include "common/logging.hh"

namespace acp::isa
{

ProgramBuilder::ProgramBuilder(Addr code_base, std::string name)
    : name_(std::move(name)), codeBase_(code_base)
{
    if (code_base % kInstrBytes != 0)
        acp_fatal("code base 0x%llx not instruction-aligned",
                  (unsigned long long)code_base);
}

Label
ProgramBuilder::newLabel()
{
    Label l;
    l.id = std::uint32_t(labelPos_.size());
    labelPos_.push_back(-1);
    return l;
}

void
ProgramBuilder::bind(Label l)
{
    if (!l.valid() || l.id >= labelPos_.size())
        acp_panic("bind: invalid label");
    if (labelPos_[l.id] >= 0)
        acp_panic("bind: label %u already bound", l.id);
    labelPos_[l.id] = std::int64_t(code_.size());
}

Addr
ProgramBuilder::here() const
{
    return codeBase_ + code_.size() * kInstrBytes;
}

void
ProgramBuilder::emit(const DecodedInst &inst)
{
    code_.push_back(encode(inst));
    pending_.push_back(inst);
}

void
ProgramBuilder::emitWord(std::uint32_t word)
{
    code_.push_back(word);
    pending_.push_back(decode(word));
}

namespace
{

DecodedInst
rtype(Op op, unsigned rd, unsigned rs1, unsigned rs2)
{
    DecodedInst inst;
    inst.op = op;
    inst.rd = std::uint8_t(rd);
    inst.rs1 = std::uint8_t(rs1);
    inst.rs2 = std::uint8_t(rs2);
    return inst;
}

DecodedInst
itype(Op op, unsigned rd, unsigned rs1, std::int64_t imm)
{
    DecodedInst inst;
    inst.op = op;
    inst.rd = std::uint8_t(rd);
    inst.rs1 = std::uint8_t(rs1);
    inst.imm = imm;
    return inst;
}

} // namespace

void ProgramBuilder::add(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kAdd, rd, rs1, rs2)); }
void ProgramBuilder::sub(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kSub, rd, rs1, rs2)); }
void ProgramBuilder::and_(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kAnd, rd, rs1, rs2)); }
void ProgramBuilder::or_(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kOr, rd, rs1, rs2)); }
void ProgramBuilder::xor_(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kXor, rd, rs1, rs2)); }
void ProgramBuilder::sll(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kSll, rd, rs1, rs2)); }
void ProgramBuilder::srl(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kSrl, rd, rs1, rs2)); }
void ProgramBuilder::sra(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kSra, rd, rs1, rs2)); }
void ProgramBuilder::slt(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kSlt, rd, rs1, rs2)); }
void ProgramBuilder::sltu(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kSltu, rd, rs1, rs2)); }
void ProgramBuilder::mul(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kMul, rd, rs1, rs2)); }
void ProgramBuilder::div(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kDiv, rd, rs1, rs2)); }
void ProgramBuilder::rem(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kRem, rd, rs1, rs2)); }

void ProgramBuilder::addi(unsigned rd, unsigned rs1, std::int64_t imm)
{ emit(itype(Op::kAddi, rd, rs1, imm)); }
void ProgramBuilder::andi(unsigned rd, unsigned rs1, std::uint64_t imm)
{ emit(itype(Op::kAndi, rd, rs1, std::int64_t(sext(imm, 16)))); }
void ProgramBuilder::ori(unsigned rd, unsigned rs1, std::uint64_t imm)
{ emit(itype(Op::kOri, rd, rs1, std::int64_t(sext(imm, 16)))); }
void ProgramBuilder::xori(unsigned rd, unsigned rs1, std::uint64_t imm)
{ emit(itype(Op::kXori, rd, rs1, std::int64_t(sext(imm, 16)))); }
void ProgramBuilder::slli(unsigned rd, unsigned rs1, unsigned sh)
{ emit(itype(Op::kSlli, rd, rs1, sh)); }
void ProgramBuilder::srli(unsigned rd, unsigned rs1, unsigned sh)
{ emit(itype(Op::kSrli, rd, rs1, sh)); }
void ProgramBuilder::srai(unsigned rd, unsigned rs1, unsigned sh)
{ emit(itype(Op::kSrai, rd, rs1, sh)); }
void ProgramBuilder::slti(unsigned rd, unsigned rs1, std::int64_t imm)
{ emit(itype(Op::kSlti, rd, rs1, imm)); }
void ProgramBuilder::lui(unsigned rd, std::uint64_t imm16)
{ emit(itype(Op::kLui, rd, 0, std::int64_t(sext(imm16, 16)))); }

void ProgramBuilder::ld(unsigned rd, std::int64_t off, unsigned base)
{ emit(itype(Op::kLd, rd, base, off)); }
void ProgramBuilder::lw(unsigned rd, std::int64_t off, unsigned base)
{ emit(itype(Op::kLw, rd, base, off)); }
void ProgramBuilder::lb(unsigned rd, std::int64_t off, unsigned base)
{ emit(itype(Op::kLb, rd, base, off)); }
void ProgramBuilder::sd(unsigned rsrc, std::int64_t off, unsigned base)
{ emit(itype(Op::kSd, rsrc, base, off)); }
void ProgramBuilder::sw(unsigned rsrc, std::int64_t off, unsigned base)
{ emit(itype(Op::kSw, rsrc, base, off)); }
void ProgramBuilder::sb(unsigned rsrc, std::int64_t off, unsigned base)
{ emit(itype(Op::kSb, rsrc, base, off)); }

void
ProgramBuilder::emitBranch(Op op, unsigned r1, unsigned r2, Label target)
{
    if (!target.valid() || target.id >= labelPos_.size())
        acp_panic("branch to invalid label");
    DecodedInst inst = itype(op, r1, r2, 0);
    fixups_.push_back({code_.size(), target.id});
    emit(inst);
}

void ProgramBuilder::beq(unsigned r1, unsigned r2, Label t)
{ emitBranch(Op::kBeq, r1, r2, t); }
void ProgramBuilder::bne(unsigned r1, unsigned r2, Label t)
{ emitBranch(Op::kBne, r1, r2, t); }
void ProgramBuilder::blt(unsigned r1, unsigned r2, Label t)
{ emitBranch(Op::kBlt, r1, r2, t); }
void ProgramBuilder::bge(unsigned r1, unsigned r2, Label t)
{ emitBranch(Op::kBge, r1, r2, t); }
void ProgramBuilder::bltu(unsigned r1, unsigned r2, Label t)
{ emitBranch(Op::kBltu, r1, r2, t); }
void ProgramBuilder::bgeu(unsigned r1, unsigned r2, Label t)
{ emitBranch(Op::kBgeu, r1, r2, t); }

void
ProgramBuilder::jal(unsigned rd, Label target)
{
    if (!target.valid() || target.id >= labelPos_.size())
        acp_panic("jal to invalid label");
    DecodedInst inst;
    inst.op = Op::kJal;
    inst.rd = std::uint8_t(rd);
    fixups_.push_back({code_.size(), target.id});
    emit(inst);
}

void
ProgramBuilder::jalr(unsigned rd, unsigned rs1, std::int64_t imm)
{
    emit(itype(Op::kJalr, rd, rs1, imm));
}

void ProgramBuilder::fadd(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kFadd, rd, rs1, rs2)); }
void ProgramBuilder::fsub(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kFsub, rd, rs1, rs2)); }
void ProgramBuilder::fmul(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kFmul, rd, rs1, rs2)); }
void ProgramBuilder::fdiv(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kFdiv, rd, rs1, rs2)); }
void ProgramBuilder::fsqrt(unsigned rd, unsigned rs1)
{ emit(rtype(Op::kFsqrt, rd, rs1, 0)); }
void ProgramBuilder::fcvtld(unsigned rd, unsigned rs1)
{ emit(rtype(Op::kFcvtLD, rd, rs1, 0)); }
void ProgramBuilder::fcvtdl(unsigned rd, unsigned rs1)
{ emit(rtype(Op::kFcvtDL, rd, rs1, 0)); }
void ProgramBuilder::flt(unsigned rd, unsigned rs1, unsigned rs2)
{ emit(rtype(Op::kFlt, rd, rs1, rs2)); }

void
ProgramBuilder::out(unsigned rs1, std::uint16_t port)
{
    // OUT encodes the port in the imm field; rs1 is the value source.
    DecodedInst inst = itype(Op::kOut, 0, rs1, std::int64_t(port));
    emit(inst);
}

void ProgramBuilder::halt()
{
    DecodedInst inst;
    inst.op = Op::kHalt;
    emit(inst);
}

void ProgramBuilder::nop()
{
    DecodedInst inst;
    inst.op = Op::kNop;
    emit(inst);
}

void
ProgramBuilder::li(unsigned rd, std::uint64_t value)
{
    std::int64_t sv = std::int64_t(value);
    if (sv >= -32768 && sv <= 32767) {
        addi(rd, 0, sv);
        return;
    }
    if (value <= 0xffffffffULL) {
        lui(rd, (value >> 16) & 0xffff);
        if (value & 0xffff)
            ori(rd, rd, value & 0xffff);
        return;
    }
    // General 64-bit: build 16 bits at a time, high to low.
    ori(rd, 0, (value >> 48) & 0xffff);
    slli(rd, rd, 16);
    ori(rd, rd, (value >> 32) & 0xffff);
    slli(rd, rd, 16);
    ori(rd, rd, (value >> 16) & 0xffff);
    slli(rd, rd, 16);
    ori(rd, rd, value & 0xffff);
}

void
ProgramBuilder::lid(unsigned rd, double d)
{
    std::uint64_t bits_value;
    std::memcpy(&bits_value, &d, sizeof(d));
    li(rd, bits_value);
}

void
ProgramBuilder::addData(Addr base, std::vector<std::uint8_t> bytes)
{
    data_.push_back({base, std::move(bytes)});
}

void
ProgramBuilder::addData64(Addr addr, std::uint64_t value)
{
    std::vector<std::uint8_t> bytes(8);
    for (int i = 0; i < 8; ++i)
        bytes[i] = std::uint8_t(value >> (8 * i));
    addData(addr, std::move(bytes));
}

Program
ProgramBuilder::finish()
{
    if (finished_)
        acp_panic("ProgramBuilder::finish called twice");
    finished_ = true;

    for (const Fixup &fixup : fixups_) {
        std::int64_t pos = labelPos_[fixup.labelId];
        if (pos < 0)
            acp_fatal("program '%s': label %u never bound", name_.c_str(),
                      fixup.labelId);
        DecodedInst inst = pending_[fixup.wordIndex];
        inst.imm = pos - std::int64_t(fixup.wordIndex);
        code_[fixup.wordIndex] = encode(inst);
    }

    Program prog;
    prog.name = name_;
    prog.codeBase = codeBase_;
    prog.entry = codeBase_;
    prog.code = std::move(code_);
    prog.data = std::move(data_);
    return prog;
}

} // namespace acp::isa
