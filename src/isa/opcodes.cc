#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace acp::isa
{

namespace
{

constexpr unsigned kNum = unsigned(Op::kNumOps);

// Table indexed by Op. Latencies follow classic SimpleScalar defaults.
const OpInfo kOpTable[kNum] = {
    // mnemonic fmt              fu                 lat pipe ld     st     br     jmp    wrD    rS1    rS2
    {"nop",   Format::kNType, FuClass::kNone,    1,  true,  false, false, false, false, false, false, false},
    {"add",   Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"sub",   Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"and",   Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"or",    Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"xor",   Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"sll",   Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"srl",   Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"sra",   Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"slt",   Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"sltu",  Format::kRType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  true },
    {"mul",   Format::kRType, FuClass::kIntMul,  3,  true,  false, false, false, false, true,  true,  true },
    {"div",   Format::kRType, FuClass::kIntDiv,  20, false, false, false, false, false, true,  true,  true },
    {"rem",   Format::kRType, FuClass::kIntDiv,  20, false, false, false, false, false, true,  true,  true },
    {"addi",  Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  false},
    {"andi",  Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  false},
    {"ori",   Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  false},
    {"xori",  Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  false},
    {"slli",  Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  false},
    {"srli",  Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  false},
    {"srai",  Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  false},
    {"slti",  Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  true,  false},
    {"lui",   Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, true,  false, false},
    {"ld",    Format::kIType, FuClass::kMemPort, 1,  true,  true,  false, false, false, true,  true,  false},
    {"lw",    Format::kIType, FuClass::kMemPort, 1,  true,  true,  false, false, false, true,  true,  false},
    {"lb",    Format::kIType, FuClass::kMemPort, 1,  true,  true,  false, false, false, true,  true,  false},
    {"sd",    Format::kSType, FuClass::kMemPort, 1,  true,  false, true,  false, false, false, true,  true },
    {"sw",    Format::kSType, FuClass::kMemPort, 1,  true,  false, true,  false, false, false, true,  true },
    {"sb",    Format::kSType, FuClass::kMemPort, 1,  true,  false, true,  false, false, false, true,  true },
    {"beq",   Format::kBType, FuClass::kIntAlu,  1,  true,  false, false, true,  false, false, true,  true },
    {"bne",   Format::kBType, FuClass::kIntAlu,  1,  true,  false, false, true,  false, false, true,  true },
    {"blt",   Format::kBType, FuClass::kIntAlu,  1,  true,  false, false, true,  false, false, true,  true },
    {"bge",   Format::kBType, FuClass::kIntAlu,  1,  true,  false, false, true,  false, false, true,  true },
    {"bltu",  Format::kBType, FuClass::kIntAlu,  1,  true,  false, false, true,  false, false, true,  true },
    {"bgeu",  Format::kBType, FuClass::kIntAlu,  1,  true,  false, false, true,  false, false, true,  true },
    {"jal",   Format::kJType, FuClass::kIntAlu,  1,  true,  false, false, false, true,  true,  false, false},
    {"jalr",  Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, true,  true,  true,  false},
    {"fadd",  Format::kRType, FuClass::kFpAdd,   2,  true,  false, false, false, false, true,  true,  true },
    {"fsub",  Format::kRType, FuClass::kFpAdd,   2,  true,  false, false, false, false, true,  true,  true },
    {"fmul",  Format::kRType, FuClass::kFpMul,   4,  true,  false, false, false, false, true,  true,  true },
    {"fdiv",  Format::kRType, FuClass::kFpDiv,   12, false, false, false, false, false, true,  true,  true },
    {"fsqrt", Format::kRType, FuClass::kFpDiv,   24, false, false, false, false, false, true,  true,  false},
    {"fcvtld",Format::kRType, FuClass::kFpAdd,   2,  true,  false, false, false, false, true,  true,  false},
    {"fcvtdl",Format::kRType, FuClass::kFpAdd,   2,  true,  false, false, false, false, true,  true,  false},
    {"flt",   Format::kRType, FuClass::kFpAdd,   2,  true,  false, false, false, false, true,  true,  true },
    {"out",   Format::kIType, FuClass::kIntAlu,  1,  true,  false, false, false, false, false, true,  false},
    {"halt",  Format::kNType, FuClass::kNone,    1,  true,  false, false, false, false, false, false, false},
};

} // namespace

const OpInfo &
opInfo(Op op)
{
    unsigned idx = unsigned(op);
    if (idx >= kNum)
        acp_panic("opInfo: invalid opcode %u", idx);
    return kOpTable[idx];
}

unsigned
memAccessBytes(Op op)
{
    switch (op) {
      case Op::kLd:
      case Op::kSd:
        return 8;
      case Op::kLw:
      case Op::kSw:
        return 4;
      case Op::kLb:
      case Op::kSb:
        return 1;
      default:
        return 0;
    }
}

} // namespace acp::isa
