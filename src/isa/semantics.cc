#include "isa/semantics.hh"

#include <cmath>
#include <cstring>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace acp::isa
{

namespace
{

double
asDouble(std::uint64_t bits_value)
{
    double d;
    std::memcpy(&d, &bits_value, sizeof(d));
    return d;
}

std::uint64_t
asBits(double d)
{
    std::uint64_t b;
    std::memcpy(&b, &d, sizeof(b));
    return b;
}

} // namespace

std::uint64_t
adjustLoadValue(Op op, std::uint64_t raw)
{
    switch (op) {
      case Op::kLd:
        return raw;
      case Op::kLw:
        return std::uint64_t(sext(raw & 0xffffffffULL, 32));
      case Op::kLb:
        return std::uint64_t(sext(raw & 0xffULL, 8));
      default:
        acp_panic("adjustLoadValue: not a load opcode");
    }
}

ExecResult
execute(const DecodedInst &inst, std::uint64_t v1, std::uint64_t v2,
        Addr pc)
{
    ExecResult res;
    const std::int64_t s1 = std::int64_t(v1);
    const std::int64_t s2 = std::int64_t(v2);
    const std::int64_t imm = inst.imm;
    const std::uint64_t uimm = std::uint64_t(inst.imm) & 0xffff;

    switch (inst.op) {
      case Op::kNop:
        break;
      case Op::kAdd:  res.value = v1 + v2; break;
      case Op::kSub:  res.value = v1 - v2; break;
      case Op::kAnd:  res.value = v1 & v2; break;
      case Op::kOr:   res.value = v1 | v2; break;
      case Op::kXor:  res.value = v1 ^ v2; break;
      case Op::kSll:  res.value = v1 << (v2 & 63); break;
      case Op::kSrl:  res.value = v1 >> (v2 & 63); break;
      case Op::kSra:  res.value = std::uint64_t(s1 >> (v2 & 63)); break;
      case Op::kSlt:  res.value = (s1 < s2) ? 1 : 0; break;
      case Op::kSltu: res.value = (v1 < v2) ? 1 : 0; break;
      case Op::kMul:  res.value = v1 * v2; break;
      case Op::kDiv:
        // Division by zero yields all-ones; INT64_MIN/-1 yields the
        // dividend (avoids UB, mirrors a trap-free embedded core).
        if (v2 == 0)
            res.value = ~std::uint64_t(0);
        else if (s1 == INT64_MIN && s2 == -1)
            res.value = v1;
        else
            res.value = std::uint64_t(s1 / s2);
        break;
      case Op::kRem:
        if (v2 == 0)
            res.value = v1;
        else if (s1 == INT64_MIN && s2 == -1)
            res.value = 0;
        else
            res.value = std::uint64_t(s1 % s2);
        break;
      case Op::kAddi: res.value = v1 + std::uint64_t(imm); break;
      case Op::kAndi: res.value = v1 & uimm; break;
      case Op::kOri:  res.value = v1 | uimm; break;
      case Op::kXori: res.value = v1 ^ uimm; break;
      case Op::kSlli: res.value = v1 << (imm & 63); break;
      case Op::kSrli: res.value = v1 >> (imm & 63); break;
      case Op::kSrai: res.value = std::uint64_t(s1 >> (imm & 63)); break;
      case Op::kSlti: res.value = (s1 < imm) ? 1 : 0; break;
      case Op::kLui:  res.value = uimm << 16; break;
      case Op::kLd:
      case Op::kLw:
      case Op::kLb:
        res.memAddr = v1 + std::uint64_t(imm);
        break;
      case Op::kSd:
      case Op::kSw:
      case Op::kSb:
        res.memAddr = v1 + std::uint64_t(imm);
        res.storeValue = v2;
        break;
      case Op::kBeq:  res.taken = (v1 == v2); break;
      case Op::kBne:  res.taken = (v1 != v2); break;
      case Op::kBlt:  res.taken = (s1 < s2); break;
      case Op::kBge:  res.taken = (s1 >= s2); break;
      case Op::kBltu: res.taken = (v1 < v2); break;
      case Op::kBgeu: res.taken = (v1 >= v2); break;
      case Op::kJal:
        res.taken = true;
        res.value = pc + kInstrBytes;
        res.target = inst.relTarget(pc);
        break;
      case Op::kJalr:
        res.taken = true;
        res.value = pc + kInstrBytes;
        res.target = (v1 + std::uint64_t(imm)) & ~Addr(3);
        break;
      case Op::kFadd: res.value = asBits(asDouble(v1) + asDouble(v2)); break;
      case Op::kFsub: res.value = asBits(asDouble(v1) - asDouble(v2)); break;
      case Op::kFmul: res.value = asBits(asDouble(v1) * asDouble(v2)); break;
      case Op::kFdiv: res.value = asBits(asDouble(v1) / asDouble(v2)); break;
      case Op::kFsqrt:
        res.value = asBits(std::sqrt(asDouble(v1)));
        break;
      case Op::kFcvtLD: // long -> double
        res.value = asBits(double(s1));
        break;
      case Op::kFcvtDL: { // double -> long (saturating, NaN -> 0)
        double d = asDouble(v1);
        if (std::isnan(d))
            res.value = 0;
        else if (d >= 9.2233720368547758e18)
            res.value = std::uint64_t(INT64_MAX);
        else if (d <= -9.2233720368547758e18)
            res.value = std::uint64_t(INT64_MIN);
        else
            res.value = std::uint64_t(std::int64_t(d));
        break;
      }
      case Op::kFlt:
        res.value = (asDouble(v1) < asDouble(v2)) ? 1 : 0;
        break;
      case Op::kOut:
        res.isOut = true;
        res.outPort = std::uint64_t(imm) & 0xffff;
        res.value = 0;
        res.storeValue = v1;
        break;
      case Op::kHalt:
        res.halted = true;
        break;
      default:
        acp_panic("execute: unhandled opcode %u", unsigned(inst.op));
    }

    if (inst.isBranch() && res.taken)
        res.target = inst.relTarget(pc);

    return res;
}

} // namespace acp::isa
