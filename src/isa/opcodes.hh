/**
 * @file
 * Opcode definitions and static per-opcode properties for the ACP
 * mini-ISA: a 64-bit RISC with 32 integer registers (x0 hardwired to
 * zero), fixed 32-bit instruction words and byte-addressed memory.
 * The ISA is deliberately SimpleScalar/Alpha-flavoured: enough to
 * express the SPEC2000-class synthetic workloads and the paper's
 * attack kernels, while keeping decode trivial.
 */

#ifndef ACP_ISA_OPCODES_HH
#define ACP_ISA_OPCODES_HH

#include <cstdint>

namespace acp::isa
{

/** Number of architectural integer registers. */
constexpr unsigned kNumRegs = 32;

/** All opcodes. FP ops operate on IEEE-754 doubles stored in x-regs. */
enum class Op : std::uint8_t
{
    kNop = 0,
    // Register-register ALU
    kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kSra, kSlt, kSltu,
    kMul, kDiv, kRem,
    // Register-immediate ALU
    kAddi, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kSlti, kLui,
    // Memory
    kLd, kLw, kLb, kSd, kSw, kSb,
    // Control transfer
    kBeq, kBne, kBlt, kBge, kBltu, kBgeu, kJal, kJalr,
    // Floating point (double precision bit patterns in integer regs)
    kFadd, kFsub, kFmul, kFdiv, kFsqrt, kFcvtLD, kFcvtDL, kFlt,
    // System
    kOut, kHalt,
    kNumOps
};

/** Functional-unit class an opcode executes on. */
enum class FuClass : std::uint8_t
{
    kIntAlu,
    kIntMul,
    kIntDiv,
    kMemPort,
    kFpAdd,
    kFpMul,
    kFpDiv,
    kNone, // kNop / kHalt
};

/** Instruction word format. */
enum class Format : std::uint8_t
{
    kRType, // op rd, rs1, rs2
    kIType, // op rd, rs1, imm16
    kSType, // op rs2(data, in rd slot), rs1(base), imm16
    kBType, // op rs1(rd slot), rs2(rs1 slot), imm16 (pc-relative words)
    kJType, // op rd, imm21 (pc-relative words)
    kNType, // no operands
};

/** Static properties of one opcode. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    FuClass fu;
    /** Execution latency in cycles once issued to its unit. */
    std::uint8_t latency;
    /** Whether the unit is pipelined (can accept an op every cycle). */
    bool pipelined;
    bool isLoad;
    bool isStore;
    /** Conditional branch. */
    bool isBranch;
    /** Unconditional jump (kJal/kJalr). */
    bool isJump;
    bool writesRd;
    bool readsRs1;
    bool readsRs2;
};

/** Look up static properties; aborts on out-of-range opcode. */
const OpInfo &opInfo(Op op);

/** Memory access size in bytes for load/store opcodes (else 0). */
unsigned memAccessBytes(Op op);

} // namespace acp::isa

#endif // ACP_ISA_OPCODES_HH
