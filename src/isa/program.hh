/**
 * @file
 * Program container and the ProgramBuilder "assembler" used to author
 * workloads and attack kernels directly in C++ with labels, forward
 * references and a few convenience pseudo-instructions.
 */

#ifndef ACP_ISA_PROGRAM_HH
#define ACP_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instr.hh"

namespace acp::isa
{

/** A data segment loaded into simulated memory before execution. */
struct DataSegment
{
    Addr base = 0;
    std::vector<std::uint8_t> bytes;
};

/** An assembled program: code image plus initialized data segments. */
struct Program
{
    std::string name;
    /** Base address of the code image. */
    Addr codeBase = 0;
    /** Entry PC. */
    Addr entry = 0;
    /** Instruction words. */
    std::vector<std::uint32_t> code;
    /** Initialized data. */
    std::vector<DataSegment> data;

    Addr codeEnd() const { return codeBase + code.size() * kInstrBytes; }
};

/** Opaque label handle issued by ProgramBuilder. */
struct Label
{
    std::uint32_t id = ~std::uint32_t(0);
    bool valid() const { return id != ~std::uint32_t(0); }
};

/**
 * Builder producing a Program. One method per opcode, plus labels and
 * pseudo-instructions. Register operands are plain unsigned register
 * numbers (0..31); x0 reads as zero and ignores writes.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Addr code_base, std::string name = "prog");

    /** Create an unbound label. */
    Label newLabel();
    /** Bind @p l to the current code position. */
    void bind(Label l);
    /** Address the next emitted instruction will have. */
    Addr here() const;

    // --- raw emission -----------------------------------------------
    /** Emit an already-decoded instruction (no label fixups). */
    void emit(const DecodedInst &inst);
    /** Emit a raw word (for deliberately malformed encodings). */
    void emitWord(std::uint32_t word);

    // --- register-register ------------------------------------------
    void add(unsigned rd, unsigned rs1, unsigned rs2);
    void sub(unsigned rd, unsigned rs1, unsigned rs2);
    void and_(unsigned rd, unsigned rs1, unsigned rs2);
    void or_(unsigned rd, unsigned rs1, unsigned rs2);
    void xor_(unsigned rd, unsigned rs1, unsigned rs2);
    void sll(unsigned rd, unsigned rs1, unsigned rs2);
    void srl(unsigned rd, unsigned rs1, unsigned rs2);
    void sra(unsigned rd, unsigned rs1, unsigned rs2);
    void slt(unsigned rd, unsigned rs1, unsigned rs2);
    void sltu(unsigned rd, unsigned rs1, unsigned rs2);
    void mul(unsigned rd, unsigned rs1, unsigned rs2);
    void div(unsigned rd, unsigned rs1, unsigned rs2);
    void rem(unsigned rd, unsigned rs1, unsigned rs2);

    // --- register-immediate -----------------------------------------
    void addi(unsigned rd, unsigned rs1, std::int64_t imm);
    void andi(unsigned rd, unsigned rs1, std::uint64_t imm);
    void ori(unsigned rd, unsigned rs1, std::uint64_t imm);
    void xori(unsigned rd, unsigned rs1, std::uint64_t imm);
    void slli(unsigned rd, unsigned rs1, unsigned sh);
    void srli(unsigned rd, unsigned rs1, unsigned sh);
    void srai(unsigned rd, unsigned rs1, unsigned sh);
    void slti(unsigned rd, unsigned rs1, std::int64_t imm);
    void lui(unsigned rd, std::uint64_t imm16);

    // --- memory ------------------------------------------------------
    void ld(unsigned rd, std::int64_t off, unsigned base);
    void lw(unsigned rd, std::int64_t off, unsigned base);
    void lb(unsigned rd, std::int64_t off, unsigned base);
    void sd(unsigned rsrc, std::int64_t off, unsigned base);
    void sw(unsigned rsrc, std::int64_t off, unsigned base);
    void sb(unsigned rsrc, std::int64_t off, unsigned base);

    // --- control -----------------------------------------------------
    void beq(unsigned r1, unsigned r2, Label target);
    void bne(unsigned r1, unsigned r2, Label target);
    void blt(unsigned r1, unsigned r2, Label target);
    void bge(unsigned r1, unsigned r2, Label target);
    void bltu(unsigned r1, unsigned r2, Label target);
    void bgeu(unsigned r1, unsigned r2, Label target);
    void jal(unsigned rd, Label target);
    void jalr(unsigned rd, unsigned rs1, std::int64_t imm = 0);

    // --- floating point ----------------------------------------------
    void fadd(unsigned rd, unsigned rs1, unsigned rs2);
    void fsub(unsigned rd, unsigned rs1, unsigned rs2);
    void fmul(unsigned rd, unsigned rs1, unsigned rs2);
    void fdiv(unsigned rd, unsigned rs1, unsigned rs2);
    void fsqrt(unsigned rd, unsigned rs1);
    void fcvtld(unsigned rd, unsigned rs1); // int64 -> double
    void fcvtdl(unsigned rd, unsigned rs1); // double -> int64
    void flt(unsigned rd, unsigned rs1, unsigned rs2);

    // --- system ------------------------------------------------------
    void out(unsigned rs1, std::uint16_t port = 0);
    void halt();
    void nop();

    // --- pseudo-instructions ------------------------------------------
    /** Load an arbitrary 64-bit constant into rd (1-7 instructions). */
    void li(unsigned rd, std::uint64_t value);
    /** Register move. */
    void mv(unsigned rd, unsigned rs) { addi(rd, rs, 0); }
    /** Unconditional jump. */
    void j(Label target) { jal(0, target); }
    /** Call via x1 link register. */
    void call(Label target) { jal(1, target); }
    /** Return through x1. */
    void ret() { jalr(0, 1, 0); }
    /** Load the IEEE bits of @p d into rd. */
    void lid(unsigned rd, double d);

    // --- data ----------------------------------------------------------
    /** Attach an initialized data segment to the program. */
    void addData(Addr base, std::vector<std::uint8_t> bytes);
    /** Store a little-endian uint64 into a data segment at @p addr. */
    void addData64(Addr addr, std::uint64_t value);

    /** Resolve fixups and produce the Program. Aborts on unbound labels. */
    Program finish();

  private:
    void emitBranch(Op op, unsigned r1, unsigned r2, Label target);

    struct Fixup
    {
        std::size_t wordIndex;
        std::uint32_t labelId;
    };

    std::string name_;
    Addr codeBase_;
    std::vector<std::uint32_t> code_;
    std::vector<DecodedInst> pending_; // parallel to code_, pre-fixup
    std::vector<std::int64_t> labelPos_; // word index or -1 if unbound
    std::vector<Fixup> fixups_;
    std::vector<DataSegment> data_;
    bool finished_ = false;
};

} // namespace acp::isa

#endif // ACP_ISA_PROGRAM_HH
